//! The grid service: one long-lived `GridSystem` + `Simulation` pair
//! driven by an input stream instead of a pre-generated batch workload.
//!
//! Three drive modes share the same grid, telemetry and finalisation:
//!
//! * [`GridService::fast_forward`] — the whole stream is known up front;
//!   requests bootstrap exactly as a batch run and scale directives
//!   become fault-timeline entries, so a pure request stream is
//!   *bit-identical* to `agentgrid run` on the same workload.
//! * [`GridService::run_scripted`] — deterministic mid-run injection:
//!   lines are injected into the running simulation the moment the event
//!   clock reaches them (via [`Simulation::peek_at`]), exercising the
//!   live-ingestion path without wall clocks. The fuzzer drives this.
//! * [`GridService::run_paced`] — real time: a reader thread feeds lines
//!   through a bounded [`AdmissionQueue`], the event loop sleeps until
//!   each event's wall deadline under a configurable time-dilation
//!   factor, and an optional HTTP listener serves `/metrics`, `/status`,
//!   `POST /ingest` and `POST /shutdown`.
//!
//! # Durability (DESIGN.md §14)
//!
//! With a [`WalConfig`] attached, every accepted line is stamped with
//! its effective schedule instant and appended to the write-ahead log
//! *before* it is applied. On startup the log is replayed through the
//! ordinary scripted-injection path — the same `inject_request` /
//! `schedule_scale` calls, the same tuner ticks, the same telemetry
//! events — so the restored grid (results, engine clock, tuner level,
//! metrics) is bit-identical to a session that never crashed. Shutdown
//! from stdin EOF, SIGTERM and `POST /shutdown` all funnel through one
//! graceful drain that applies admitted lines, runs the simulation dry
//! and flushes the WAL.

use crate::admission::AdmissionQueue;
use crate::stream::{canonical_line, parse_line, stamp, ServeLine};
use crate::tuner::{Tuner, TunerConfig};
use crate::wal::{self, WalConfig, WalWriter};
use agentgrid::{
    collect_result, grid_config, queue_pool, ExperimentResult, Fault, GridEvent, GridSystem,
    RunOptions, ShardRunner,
};
use agentgrid_metrics::{compute_grid, MetricsReport, ResourceStats};
use agentgrid_sim::{SimDuration, SimTime, Simulation};
use agentgrid_telemetry::prometheus;
use agentgrid_telemetry::{
    AggregateRecorder, Event, InvariantRecorder, MultiRecorder, Recorder, Telemetry,
};
use agentgrid_workload::{ExperimentDesign, GridTopology};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Admitted-but-unapplied lines the paced loop tolerates before the
/// HTTP path starts answering 429 (overridable via `PacedOptions`).
pub const DEFAULT_ADMISSION_CAPACITY: usize = 1024;

/// Everything needed to stand up a served grid.
pub struct ServeConfig {
    /// The grid topology to serve.
    pub topology: GridTopology,
    /// Policy/agents configuration (`number` is cosmetic here).
    pub design: ExperimentDesign,
    /// Run options: catalogue, GA tuning, advertisement strategy, noise.
    /// The `telemetry` field is ignored (the service owns its sinks) and
    /// `chaos` is extended with any scale directives from the stream.
    pub opts: RunOptions,
    /// Workload/grid RNG seed.
    pub seed: u64,
    /// Check behavioural invariants online over the served stream.
    pub verify: bool,
    /// Attach the online self-tuner.
    pub tune: Option<TunerConfig>,
    /// Write-ahead log: accepted lines are appended before they apply,
    /// and a log with history is replayed on startup (crash recovery).
    /// Live modes only; fast-forward bypasses the ingestion path.
    pub wal: Option<WalConfig>,
    /// Append every accepted line (canonically stamped) to this file,
    /// turning the session into a `--replay`able regression case.
    pub record: Option<String>,
}

/// Durability summary for a run served with a WAL attached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalSummary {
    /// Sequence number of the last record in the log.
    pub final_seq: u64,
    /// Epoch this session wrote at (recoveries so far).
    pub epoch: u64,
    /// Records replayed from the log at startup.
    pub replayed: u64,
    /// Torn-tail bytes discarded during recovery.
    pub truncated_bytes: u64,
}

/// What a finished serve run reports.
pub struct ServeReport {
    /// The batch-equivalent §3.3 metrics report.
    pub result: ExperimentResult,
    /// Requests accepted from the stream (replayed ones included).
    pub injected: usize,
    /// Tasks completed (exactly-once; excludes rejected).
    pub completed: usize,
    /// Scale directives applied.
    pub scale_directives: usize,
    /// Knob changes made by the tuner.
    pub tuner_adjustments: u64,
    /// Input lines that failed to parse or apply (paced mode skips bad
    /// lines instead of dying mid-serve; scripted/fast-forward error out).
    pub skipped_lines: usize,
    /// Lines refused by the bounded admission queue (HTTP 429s).
    pub ingest_rejected: u64,
    /// Write-ahead log summary (`None` when served without `--wal`).
    pub wal: Option<WalSummary>,
    /// The final Prometheus text exposition.
    pub metrics_text: String,
    /// The invariant checker's report (None when `verify` is off).
    pub verify_report: Option<String>,
    /// Telemetry events the checker examined (0 when `verify` is off).
    pub verify_events: u64,
    /// True when `verify` is off or the stream was violation-free.
    pub clean: bool,
}

/// Live ε/ῡ/β over everything completed so far, plus queue depths — the
/// serve-mode status line and `/status` endpoint body.
#[derive(Clone, Debug)]
pub struct LiveStatus {
    /// Current sim time, seconds.
    pub now_s: f64,
    /// ε — mean completion advance over deadline, seconds.
    pub epsilon_s: f64,
    /// ῡ — mean resource utilisation, percent.
    pub upsilon_pct: f64,
    /// β — load-balancing level, percent.
    pub beta_pct: f64,
    /// Tasks completed so far.
    pub completed: usize,
    /// Tasks queued (not started).
    pub queued: usize,
    /// Tasks submitted and unfinished.
    pub active: usize,
    /// Resources currently serving.
    pub online: usize,
    /// Agent-subtree shards the event loop runs over (DESIGN.md §13;
    /// 1 = sequential loop). Results never depend on this.
    pub shards: usize,
    /// Last WAL sequence number (0 without a WAL).
    pub wal_seq: u64,
    /// WAL records appended but not yet fsynced.
    pub wal_lag: u64,
    /// Lines admitted and waiting in the ingest queue.
    pub queue_depth: usize,
    /// Lines refused by admission control so far.
    pub rejected_total: u64,
}

impl LiveStatus {
    /// The one-line human form (`--status` stderr line).
    pub fn line(&self) -> String {
        format!(
            "t={:.1}s  ε={:+.1}s  ῡ={:.1}%  β={:.1}%  completed={} active={} queued={} \
             online={} shards={} ingest_q={} rejected={} wal_seq={} wal_lag={}",
            self.now_s,
            self.epsilon_s,
            self.upsilon_pct,
            self.beta_pct,
            self.completed,
            self.active,
            self.queued,
            self.online,
            self.shards,
            self.queue_depth,
            self.rejected_total,
            self.wal_seq,
            self.wal_lag
        )
    }

    /// The JSON form served at `/status`.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"now_s\": {:.6}, \"epsilon_s\": {:.6}, \"upsilon_pct\": {:.6}, ",
                "\"beta_pct\": {:.6}, \"completed\": {}, \"active\": {}, ",
                "\"queued\": {}, \"online\": {}, \"shards\": {}, ",
                "\"wal_seq\": {}, \"wal_lag\": {}, \"queue_depth\": {}, ",
                "\"rejected_total\": {}}}"
            ),
            self.now_s,
            self.epsilon_s,
            self.upsilon_pct,
            self.beta_pct,
            self.completed,
            self.active,
            self.queued,
            self.online,
            self.shards,
            self.wal_seq,
            self.wal_lag,
            self.queue_depth,
            self.rejected_total
        )
    }
}

/// Pacing knobs for [`GridService::run_paced`].
pub struct PacedOptions {
    /// Sim-seconds that elapse per wall-second (1.0 = real time; 60.0
    /// runs a simulated minute every second).
    pub speed: f64,
    /// Wall period between stderr status lines (zero disables them).
    pub status_every: Duration,
    /// The bounded admission queue shared with the HTTP listener; the
    /// loop creates a private one (default capacity) when `None`.
    pub admission: Option<Arc<AdmissionQueue>>,
}

impl Default for PacedOptions {
    fn default() -> PacedOptions {
        PacedOptions {
            speed: 1.0,
            status_every: Duration::from_secs(2),
            admission: None,
        }
    }
}

/// SIGTERM → graceful drain, std-only: `signal(2)` is in every libc the
/// platform links anyway, and the handler only flips an atomic.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);
    const SIGTERM: i32 = 15;

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }

    pub fn triggered() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigterm {
    pub fn install() {}
    pub fn triggered() -> bool {
        false
    }
}

/// A long-lived grid with its simulation, telemetry sinks and tuner.
pub struct GridService {
    topology: GridTopology,
    design: ExperimentDesign,
    grid: GridSystem,
    sim: Simulation<GridEvent>,
    runner: ShardRunner,
    telemetry: Telemetry,
    agg: Arc<AggregateRecorder>,
    checker: Option<Arc<InvariantRecorder>>,
    tuner: Option<Tuner>,
    /// Infrastructure telemetry (WAL appends/replays, ingest rejections)
    /// goes to its own recorder, like the shard-sync channel: the main
    /// stream must stay bit-identical between a recovered session and an
    /// uninterrupted one, and `wal_replay` vs `wal_append` counts differ
    /// by construction.
    infra: Arc<AggregateRecorder>,
    infra_telemetry: Telemetry,
    wal: Option<WalWriter>,
    record: Option<std::fs::File>,
    admission: Option<Arc<AdmissionQueue>>,
    wal_replayed: u64,
    wal_truncated: u64,
    injected: usize,
    scale_directives: usize,
    skipped_lines: usize,
}

impl GridService {
    /// Stand up the grid. `arm_recovery` decides whether the chaos
    /// recovery machinery exists from boot (the live modes always arm it
    /// — directives can arrive at any time — while fast-forward arms it
    /// only when the stream actually scales, keeping pure request
    /// streams on the exact chaos-free batch configuration).
    /// `chaotic_check` picks the invariant checker's tolerance and is
    /// decided from the *stream content*, not from the arming: a
    /// scripted stream with no directives is still held to the strict
    /// invariants. `plan_scales` pre-resolves known directives into the
    /// fault timeline (fast-forward); live modes pass none and inject.
    fn new(
        cfg: &ServeConfig,
        arm_recovery: bool,
        plan_scales: &[ServeLine],
        chaotic_check: bool,
    ) -> GridService {
        let mut opts = cfg.opts.clone();
        if arm_recovery {
            opts.chaos = opts.chaos.with_recovery();
        }
        for l in plan_scales {
            if let ServeLine::Scale { at, resource, up } = l {
                let fault = if *up {
                    Fault::ScaleUp {
                        resource: resource.clone(),
                    }
                } else {
                    Fault::ScaleDown {
                        resource: resource.clone(),
                    }
                };
                opts.chaos = opts.chaos.with_event(*at, fault);
            }
        }

        let agg = Arc::new(AggregateRecorder::new());
        let checker = cfg.verify.then(|| {
            Arc::new(if chaotic_check {
                InvariantRecorder::chaos()
            } else {
                InvariantRecorder::strict()
            })
        });
        let mut sinks: Vec<Arc<dyn Recorder>> = vec![agg.clone()];
        if let Some(c) = &checker {
            sinks.push(c.clone());
        }
        let telemetry = Telemetry::new(Arc::new(MultiRecorder::new(sinks)));
        opts.telemetry = telemetry.clone();
        let infra = Arc::new(AggregateRecorder::new());
        let infra_telemetry = Telemetry::new(infra.clone());

        let config = grid_config(&cfg.design, cfg.seed, &opts);
        let grid = GridSystem::new(&cfg.topology, &opts.catalog, &config);
        // Recycled queue: a service restarted in-process (the fuzzer,
        // sweeps) reuses the previous run's wheel allocations.
        let mut sim = Simulation::with_queue(queue_pool::take());
        sim.set_telemetry(telemetry.clone());
        if let Some(limit) = opts.step_limit {
            sim.set_step_limit(limit);
        }
        let tuner = cfg
            .tune
            .map(|t| Tuner::new(t, cfg.topology.resources.len(), &grid));
        GridService {
            topology: cfg.topology.clone(),
            design: cfg.design,
            grid,
            sim,
            runner: ShardRunner::new(opts.shards, opts.shard_workers),
            telemetry,
            agg,
            checker,
            tuner,
            infra,
            infra_telemetry,
            wal: None,
            record: None,
            admission: None,
            wal_replayed: 0,
            wal_truncated: 0,
            injected: 0,
            scale_directives: 0,
            skipped_lines: 0,
        }
    }

    /// Serve a fully-known stream as fast as the simulator runs. A
    /// stream without scale directives reproduces `agentgrid run` on the
    /// same requests bit-for-bit. Incompatible with `--wal`: requests
    /// bootstrap batch-style here, bypassing the ingestion path the log
    /// replays through.
    pub fn fast_forward(cfg: &ServeConfig, lines: &[ServeLine]) -> Result<ServeReport, String> {
        if cfg.wal.is_some() {
            return Err("--wal needs a live drive mode (drop --fast-forward)".to_string());
        }
        let scales = lines.iter().any(|l| matches!(l, ServeLine::Scale { .. }));
        let chaotic = scales || !cfg.opts.chaos.is_noop();
        let mut svc = GridService::new(cfg, scales, lines, chaotic);
        svc.open_record(cfg)?;
        if let Some(f) = &mut svc.record {
            for l in lines {
                writeln!(f, "{}", canonical_line(l)).map_err(|e| format!("record append: {e}"))?;
            }
        }
        let requests: Vec<_> = lines
            .iter()
            .filter_map(|l| match l {
                ServeLine::Request(r) => Some(r.clone()),
                ServeLine::Scale { .. } => {
                    svc.scale_directives += 1;
                    None
                }
            })
            .collect();
        svc.injected = requests.len();
        svc.grid.bootstrap(&mut svc.sim, requests);
        while svc.pump(None) > 0 {}
        svc.check_step_limit()?;
        Ok(svc.into_report())
    }

    /// Serve a fully-known stream through the *live* injection path:
    /// each line enters the running simulation exactly when the event
    /// clock reaches its instant. Deterministic (no wall clock), so the
    /// fuzzer can shrink failures through it. With a WAL attached, an
    /// existing log replays first and the given lines continue it.
    pub fn run_scripted(cfg: &ServeConfig, lines: &[ServeLine]) -> Result<ServeReport, String> {
        let scales = lines.iter().any(|l| matches!(l, ServeLine::Scale { .. }));
        let chaotic = scales || !cfg.opts.chaos.is_noop();
        let mut svc = GridService::open_live(cfg, chaotic)?;
        let mut lines = lines.to_vec();
        // Stable by instant: same-instant lines keep stream order, which
        // is also the order a WAL of this session will hold them in.
        lines.sort_by_key(ServeLine::at);
        svc.ingest(&lines)?;
        svc.drain()?;
        Ok(svc.into_report())
    }

    /// Replay a recorded session (or raw WAL) in *file order* — the
    /// order the original session accepted the lines in, which is what
    /// keeps request indices (and so task identities) identical to the
    /// session being reproduced. Strict: a line that fails to apply
    /// fails the replay, as a regression case should.
    pub fn run_replay(cfg: &ServeConfig, lines: &[ServeLine]) -> Result<ServeReport, String> {
        let scales = lines.iter().any(|l| matches!(l, ServeLine::Scale { .. }));
        let chaotic = scales || !cfg.opts.chaos.is_noop();
        let mut svc = GridService::open_live(cfg, chaotic)?;
        svc.ingest(lines)?;
        svc.drain()?;
        Ok(svc.into_report())
    }

    /// Boot a live-mode service: arm recovery, bootstrap an empty grid,
    /// open the recording and the WAL — and, when the WAL already holds
    /// records, replay them through the ordinary ingestion path so the
    /// restored grid is bit-identical to a session that never stopped.
    /// `chaotic_check` relaxes the invariant checker for streams that
    /// scale (the replayed prefix counts too).
    pub fn open_live(cfg: &ServeConfig, chaotic_check: bool) -> Result<GridService, String> {
        let recovery = match &cfg.wal {
            Some(w) => wal::read_wal(&w.path).map_err(|e| format!("wal {}: {e}", w.path))?,
            None => wal::WalRecovery::default(),
        };
        let mut replay_lines = Vec::new();
        for rec in &recovery.records {
            // Canonical records always carry tick-exact instants, so the
            // default_at is never consulted.
            match parse_line(&rec.line, SimTime::ZERO) {
                Ok(Some(l)) => replay_lines.push(l),
                Ok(None) => {}
                Err(e) => return Err(format!("wal record {}: {e}", rec.seq)),
            }
        }
        let chaotic = chaotic_check
            || !cfg.opts.chaos.is_noop()
            || replay_lines
                .iter()
                .any(|l| matches!(l, ServeLine::Scale { .. }));
        let mut svc = GridService::new(cfg, true, &[], chaotic);
        svc.grid.bootstrap(&mut svc.sim, Vec::new());
        svc.open_record(cfg)?;
        if let Some(w) = &cfg.wal {
            let writer = WalWriter::resume(&w.path, w.sync, &recovery)
                .map_err(|e| format!("wal {}: {e}", w.path))?;
            let epoch = writer.epoch();
            svc.wal = Some(writer);
            if !recovery.is_fresh() {
                svc.replay(&replay_lines)?;
                svc.wal_replayed = recovery.records.len() as u64;
                svc.wal_truncated = recovery.truncated_bytes;
                let (records, last_seq, truncated_bytes) = (
                    recovery.records.len() as u64,
                    recovery.last_seq(),
                    recovery.truncated_bytes,
                );
                svc.infra_telemetry
                    .emit(svc.sim.now().ticks(), || Event::WalReplay {
                        records,
                        last_seq,
                        epoch,
                        truncated_bytes,
                    });
            }
        }
        Ok(svc)
    }

    fn open_record(&mut self, cfg: &ServeConfig) -> Result<(), String> {
        if let Some(path) = &cfg.record {
            let f = std::fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(path)
                .map_err(|e| format!("record {path}: {e}"))?;
            self.record = Some(f);
        }
        Ok(())
    }

    /// Ingest new lines through the scripted discipline: each line is
    /// accepted (stamped → logged → applied) once the event clock
    /// reaches its instant. Lines must already be in application order.
    pub fn ingest(&mut self, lines: &[ServeLine]) -> Result<(), String> {
        self.scripted_loop(lines, false)
    }

    /// Replay recovered lines through the same discipline, but apply
    /// only (they are already in the log) and skip lines that no longer
    /// apply — exactly what the live session did when it accepted them.
    fn replay(&mut self, lines: &[ServeLine]) -> Result<(), String> {
        self.scripted_loop(lines, true)
    }

    fn scripted_loop(&mut self, lines: &[ServeLine], replaying: bool) -> Result<(), String> {
        let mut next = 0;
        while next < lines.len() {
            let due = lines[next].at();
            let inject = match self.sim.peek_at() {
                Some(n) => due <= n,
                None => true,
            };
            if inject {
                if replaying {
                    if let Err(e) = self.apply_line(&lines[next]) {
                        eprintln!("serve: wal replay skipping line: {e}");
                        self.skipped_lines += 1;
                    }
                } else {
                    self.accept_line(&lines[next])?;
                }
                next += 1;
            } else {
                self.pump(Some(due));
                if self.sim.step_limit_reached() {
                    return Err("serve exceeded the step limit (possible livelock)".to_string());
                }
            }
        }
        Ok(())
    }

    /// Run the simulation dry and flush the WAL — the tail end of every
    /// drive mode and of the crash-recovery harness.
    pub fn drain(&mut self) -> Result<(), String> {
        while self.pump(None) > 0 {}
        self.check_step_limit()?;
        self.flush_wal()
    }

    /// Serve live: read JSONL lines from `input` on a background thread
    /// into the bounded admission queue, pace the event clock against
    /// the wall clock at `paced.speed` sim-seconds per second, and drain
    /// gracefully on stdin EOF (when no listener holds the service
    /// open), SIGTERM or `POST /shutdown` — one unified path that
    /// applies admitted lines, flushes telemetry and the WAL. Bad lines
    /// are reported to stderr and skipped — a long-running service must
    /// not die on a typo.
    pub fn run_paced(
        cfg: &ServeConfig,
        input: impl BufRead + Send + 'static,
        paced: PacedOptions,
        shared: Option<Arc<crate::http::ServeShared>>,
    ) -> Result<ServeReport, String> {
        if !(paced.speed.is_finite() && paced.speed > 0.0) {
            return Err("--speed must be a positive number".to_string());
        }
        let mut svc = GridService::open_live(cfg, true)?;
        let admission = paced
            .admission
            .unwrap_or_else(|| Arc::new(AdmissionQueue::new(DEFAULT_ADMISSION_CAPACITY)));
        svc.admission = Some(admission.clone());
        sigterm::install();

        let stdin_done = Arc::new(AtomicBool::new(false));
        let reader = {
            let admission = admission.clone();
            let stdin_done = stdin_done.clone();
            std::thread::spawn(move || {
                for line in input.lines() {
                    match line {
                        Ok(l) => {
                            if !admission.push_blocking("stdin", l) {
                                break; // draining
                            }
                        }
                        Err(e) => {
                            eprintln!("serve: input read error: {e}");
                            break;
                        }
                    }
                }
                stdin_done.store(true, Ordering::Release);
            })
        };

        // A recovered session's clock starts where the log left it; the
        // wall epoch maps onto sim time from that base, so replayed work
        // is not re-waited for.
        let base = svc.sim.now();
        let epoch = Instant::now();
        let wall_to_sim = |elapsed: Duration| {
            base + SimDuration::from_secs_f64(elapsed.as_secs_f64() * paced.speed)
        };
        let mut last_status = Instant::now();
        let mut rejected_seen = 0u64;
        loop {
            if sigterm::triggered() || shared.as_ref().is_some_and(|s| s.shutdown_requested()) {
                break; // graceful drain below
            }
            // Accept every line currently admitted from stdin + network.
            while let Some((_client, raw)) = admission.pop() {
                // A live line with no explicit instant arrives "now" in
                // paced sim time.
                let arrival = wall_to_sim(epoch.elapsed()).max(svc.sim.now());
                svc.accept_raw(&raw, arrival);
            }
            // Backpressure rejections surface on the infra channel.
            let rejected = admission.rejected_total();
            if rejected > rejected_seen {
                let lines = rejected - rejected_seen;
                rejected_seen = rejected;
                let queue_depth = admission.depth() as u64;
                svc.infra_telemetry
                    .emit(svc.sim.now().ticks(), || Event::IngestRejected {
                        lines,
                        queue_depth,
                    });
            }

            match svc.sim.peek_at() {
                Some(t) => {
                    let due = Duration::from_secs_f64(
                        (t.as_secs_f64() - base.as_secs_f64()).max(0.0) / paced.speed,
                    );
                    let elapsed = epoch.elapsed();
                    if elapsed >= due {
                        // Everything at or before the wall watermark is
                        // due; deliver one event or one batch window
                        // within it (`max(t)` guards float rounding).
                        let watermark = wall_to_sim(elapsed).max(t) + SimDuration::from_ticks(1);
                        svc.pump(Some(watermark));
                    } else {
                        // Sleep in short slices so fresh input and
                        // shutdown stay responsive.
                        std::thread::sleep((due - elapsed).min(Duration::from_millis(20)));
                    }
                }
                None => {
                    // Without a listener, stdin EOF ends the session; a
                    // listener holds it open for /ingest until /shutdown
                    // or SIGTERM.
                    if stdin_done.load(Ordering::Acquire)
                        && shared.is_none()
                        && admission.depth() == 0
                    {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }

            let publish =
                !paced.status_every.is_zero() && last_status.elapsed() >= paced.status_every;
            if publish {
                last_status = Instant::now();
                let status = svc.live_status();
                eprintln!("serve: {}", status.line());
            }
            if let Some(shared) = &shared {
                if publish || shared.wants_refresh() {
                    let status = svc.live_status();
                    shared.publish(svc.render_metrics(&status), status.to_json());
                }
            }
        }

        svc.graceful_drain(&admission, wall_to_sim(epoch.elapsed()))?;
        if stdin_done.load(Ordering::Acquire) {
            let _ = reader.join();
        }
        // else: the reader is parked on a live stdin; it exits on the
        // next line (push_blocking sees the closed queue) or with us.
        let report = svc.into_report();
        if let Some(shared) = &shared {
            shared.publish(report.metrics_text.clone(), String::new());
            shared.shutdown();
        }
        if let Some(w) = &report.wal {
            eprintln!(
                "serve: drained; wal seq {} (epoch {}, {} replayed)",
                w.final_seq, w.epoch, w.replayed
            );
        }
        Ok(report)
    }

    /// The unified shutdown path: close admissions, apply what was
    /// already admitted, run the simulation dry, flush the WAL.
    fn graceful_drain(
        &mut self,
        admission: &AdmissionQueue,
        arrival_floor: SimTime,
    ) -> Result<(), String> {
        admission.close();
        while let Some((_client, raw)) = admission.pop() {
            let arrival = arrival_floor.max(self.sim.now());
            self.accept_raw(&raw, arrival);
        }
        self.drain()
    }

    /// Parse and accept one raw paced-mode line, skipping (with a stderr
    /// note) anything that does not parse or apply.
    fn accept_raw(&mut self, raw: &str, arrival: SimTime) {
        match parse_line(raw, arrival) {
            Ok(Some(l)) => {
                if let Err(e) = self.accept_line(&l) {
                    eprintln!("serve: skipping line: {e}");
                    self.skipped_lines += 1;
                }
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("serve: skipping line: {e}");
                self.skipped_lines += 1;
            }
        }
    }

    /// Accept one new line: stamp it with its effective schedule instant
    /// (`at := max(at, now)`), append it to the WAL and the recording
    /// *before* it applies, then inject it. The stamped form is what
    /// both files hold, so replay schedules the same event at the same
    /// tick this call does.
    fn accept_line(&mut self, line: &ServeLine) -> Result<(), String> {
        let stamped = stamp(line, self.sim.now());
        let text = canonical_line(&stamped);
        if let Some(w) = &mut self.wal {
            let (seq, bytes) = w.append(&text).map_err(|e| format!("wal append: {e}"))?;
            let epoch = w.epoch();
            self.infra_telemetry
                .emit(self.sim.now().ticks(), || Event::WalAppend {
                    seq,
                    epoch,
                    bytes,
                });
        }
        if let Some(f) = &mut self.record {
            writeln!(f, "{text}").map_err(|e| format!("record append: {e}"))?;
        }
        self.apply_line(&stamped)
    }

    /// Inject one parsed line into the running grid.
    fn apply_line(&mut self, line: &ServeLine) -> Result<(), String> {
        match line {
            ServeLine::Request(r) => {
                self.grid.inject_request(&mut self.sim, r)?;
                self.injected += 1;
            }
            ServeLine::Scale { at, resource, up } => {
                self.grid
                    .schedule_scale(&mut self.sim, resource, *up, *at)?;
                self.scale_directives += 1;
            }
        }
        Ok(())
    }

    /// Deliver the next event — or one shard batch window — bounded by
    /// `before`, then give the tuner its per-event tick. Batching stays
    /// off while a tuner is attached: the tuner may move knobs (pull
    /// period, ACT TTL) between any two events, which the batch
    /// commuting argument does not cover.
    fn pump(&mut self, before: Option<SimTime>) -> usize {
        let allow_batch = self.tuner.is_none();
        let n = self
            .runner
            .pump(&mut self.grid, &mut self.sim, before, allow_batch);
        if n > 0 {
            self.tune();
        }
        n
    }

    fn tune(&mut self) {
        if let Some(t) = &mut self.tuner {
            t.tick(self.sim.now(), &mut self.grid, &self.telemetry);
        }
    }

    fn check_step_limit(&self) -> Result<(), String> {
        if self.sim.step_limit_reached() {
            return Err("serve exceeded the step limit (possible livelock)".to_string());
        }
        Ok(())
    }

    fn flush_wal(&mut self) -> Result<(), String> {
        match &mut self.wal {
            Some(w) => w.flush().map_err(|e| format!("wal flush: {e}")),
            None => Ok(()),
        }
    }

    /// Records replayed from the WAL at startup (crash recovery).
    pub fn wal_replayed(&self) -> u64 {
        self.wal_replayed
    }

    /// Sequence number of the last WAL record (0 without a WAL).
    pub fn wal_seq(&self) -> u64 {
        self.wal.as_ref().map_or(0, WalWriter::seq)
    }

    /// Snapshot of the infrastructure telemetry channel (WAL appends and
    /// replays, ingest rejections) — kept off the main stream so
    /// recovered and uninterrupted sessions stay bit-identical there.
    pub fn infra_snapshot(&self) -> agentgrid_telemetry::Aggregate {
        self.infra.snapshot()
    }

    /// Live ε/ῡ/β over the work completed so far, observed at `now`.
    fn live_status(&self) -> LiveStatus {
        let now = self.sim.now();
        let horizon = now.max(SimTime::from_ticks(1));
        let stats: Vec<ResourceStats> = self
            .topology
            .resources
            .iter()
            .map(|spec| {
                let s = self
                    .grid
                    .scheduler(&spec.name)
                    .expect("scheduler per topology resource");
                ResourceStats::from_run(
                    &spec.name,
                    spec.nproc,
                    s.resource().allocations(),
                    s.completed(),
                    horizon,
                )
            })
            .collect();
        let total: MetricsReport = compute_grid(&stats, horizon.as_secs_f64().max(1e-9));
        let online = self
            .topology
            .resources
            .iter()
            .filter(|r| self.grid.resource_online(&r.name) == Some(true))
            .count();
        LiveStatus {
            now_s: now.as_secs_f64(),
            epsilon_s: total.advance_s,
            upsilon_pct: total.utilisation_pct,
            beta_pct: total.balance_pct,
            completed: total.tasks,
            queued: self.grid.queued_tasks(),
            active: self.grid.active_tasks(),
            online,
            shards: self.runner.shards(),
            wal_seq: self.wal_seq(),
            wal_lag: self.wal.as_ref().map_or(0, WalWriter::lag),
            queue_depth: self.admission.as_ref().map_or(0, |a| a.depth()),
            rejected_total: self.admission.as_ref().map_or(0, |a| a.rejected_total()),
        }
    }

    /// Render the Prometheus exposition with the live gauges appended.
    fn render_metrics(&self, status: &LiveStatus) -> String {
        prometheus::render(
            &self.agg.snapshot(),
            &[
                (
                    "agentgrid_epsilon_advance_seconds",
                    "Mean completion advance over deadline (paper eq. 11).",
                    status.epsilon_s,
                ),
                (
                    "agentgrid_upsilon_utilisation_percent",
                    "Mean resource utilisation (paper eqs. 12-13).",
                    status.upsilon_pct,
                ),
                (
                    "agentgrid_beta_balance_percent",
                    "Load-balancing level (paper eqs. 14-15).",
                    status.beta_pct,
                ),
                (
                    "agentgrid_completed_tasks",
                    "Tasks completed exactly once.",
                    status.completed as f64,
                ),
                (
                    "agentgrid_active_tasks",
                    "Tasks submitted and not yet complete.",
                    status.active as f64,
                ),
                (
                    "agentgrid_queued_tasks",
                    "Tasks waiting in scheduler queues.",
                    status.queued as f64,
                ),
                (
                    "agentgrid_resources_online",
                    "Resources currently serving (not crashed or scaled down).",
                    status.online as f64,
                ),
                (
                    "agentgrid_sim_now_seconds",
                    "Current simulation time.",
                    status.now_s,
                ),
                (
                    "agentgrid_wal_seq",
                    "Sequence number of the last write-ahead-log record.",
                    status.wal_seq as f64,
                ),
                (
                    "agentgrid_wal_lag_records",
                    "WAL records appended but not yet fsynced.",
                    status.wal_lag as f64,
                ),
                (
                    "agentgrid_ingest_queue_depth",
                    "Lines admitted and waiting in the ingest queue.",
                    status.queue_depth as f64,
                ),
                (
                    "agentgrid_ingest_rejected_total",
                    "Lines refused by admission control (HTTP 429).",
                    status.rejected_total as f64,
                ),
            ],
        )
    }

    /// Emit the final horizon, flush telemetry and assemble the report.
    pub fn into_report(self) -> ServeReport {
        debug_assert!(
            !self.grid.work_remains(),
            "serve ended with work outstanding"
        );
        let final_now = self.sim.now().ticks();
        self.telemetry.emit(final_now, || Event::EngineHorizon {
            horizon: self.grid.horizon().ticks(),
        });
        // The tuner's final state is part of the served record even if
        // the last interval never elapsed.
        self.telemetry.flush();
        self.infra_telemetry.flush();
        let result = collect_result(&self.design, &self.topology, &self.grid, self.injected);
        let status = self.live_status();
        let metrics_text = self.render_metrics(&status);
        let (verify_report, verify_events, clean) = match &self.checker {
            None => (None, 0, true),
            Some(c) => (
                Some(c.report().trim_end().to_string()),
                c.events_seen(),
                c.is_clean(),
            ),
        };
        let wal_summary = self.wal.as_ref().map(|w| WalSummary {
            final_seq: w.seq(),
            epoch: w.epoch(),
            replayed: self.wal_replayed,
            truncated_bytes: self.wal_truncated,
        });
        let report = ServeReport {
            result,
            injected: self.injected,
            completed: self.grid.completed_tasks(),
            scale_directives: self.scale_directives,
            tuner_adjustments: self.tuner.as_ref().map_or(0, Tuner::adjustments),
            skipped_lines: self.skipped_lines,
            ingest_rejected: self.admission.as_ref().map_or(0, |a| a.rejected_total()),
            wal: wal_summary,
            metrics_text,
            verify_report,
            verify_events,
            clean,
        };
        queue_pool::give(self.sim);
        report
    }
}
