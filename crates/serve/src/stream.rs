//! The serve-mode wire format: one JSON object per line.
//!
//! Two line shapes are accepted, distinguished by their fields:
//!
//! ```text
//! {"app": "sweep3d", "agent": "S1", "deadline": 300, "at": 1.5}   request
//! {"scale": "down", "resource": "S3", "at": 5}                   directive
//! ```
//!
//! Request lines become [`GeneratedRequest`]s — `agent` is the submitting
//! agent, `deadline` is seconds *after arrival* (the natural way to type
//! one by hand), `at` the arrival instant in seconds (default: now for a
//! paced stream, t=0 for fast-forward). The tick-exact variants `at_us`
//! and `deadline_us` (absolute microsecond ticks) override the float
//! fields; [`write_request`] emits those, so a written stream re-parses
//! to bit-identical requests. `env` picks `mpi`/`pvm`/`test` (default
//! `test`, the paper's experiment mode).
//!
//! Scale lines are elasticity directives: a planned, graceful resource
//! leave (`down`: queued work drains and re-places, running tasks finish)
//! or join (`up`). Blank lines and `#` comments are skipped.

use agentgrid_cluster::ExecEnv;
use agentgrid_sim::SimTime;
use agentgrid_telemetry::json::{self, Value};
use agentgrid_workload::GeneratedRequest;

/// One parsed line of a serve-mode input stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeLine {
    /// Submit a request through the portal.
    Request(GeneratedRequest),
    /// Scale a resource gracefully down (leave) or up (join).
    Scale {
        /// When the directive fires.
        at: SimTime,
        /// The resource that leaves or joins.
        resource: String,
        /// Join (`true`) or leave (`false`).
        up: bool,
    },
}

impl ServeLine {
    /// The instant this line acts on the grid.
    pub fn at(&self) -> SimTime {
        match self {
            ServeLine::Request(r) => r.at,
            ServeLine::Scale { at, .. } => *at,
        }
    }
}

fn time_field(obj: &Value, secs_key: &str, ticks_key: &str) -> Result<Option<SimTime>, String> {
    if let Some(v) = obj.get(ticks_key) {
        let t = v
            .as_u64()
            .ok_or_else(|| format!("{ticks_key} must be an unsigned tick count"))?;
        return Ok(Some(SimTime::from_ticks(t)));
    }
    match obj.get(secs_key) {
        None => Ok(None),
        Some(v) => {
            let s = v
                .as_f64()
                .ok_or_else(|| format!("{secs_key} must be a number of seconds"))?;
            if !s.is_finite() || s < 0.0 {
                return Err(format!("{secs_key} must be finite and non-negative"));
            }
            Ok(Some(SimTime::from_secs_f64(s)))
        }
    }
}

/// Parse one line. `default_at` supplies the arrival instant when the
/// line does not carry one (a paced stream stamps lines as they arrive;
/// fast-forward uses t=0). Returns `Ok(None)` for blanks and comments.
pub fn parse_line(line: &str, default_at: SimTime) -> Result<Option<ServeLine>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let v = Value::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let at = time_field(&v, "at", "at_us")?.unwrap_or(default_at);

    if let Some(scale) = v.get("scale") {
        let dir = scale
            .as_str()
            .ok_or_else(|| "scale must be \"up\" or \"down\"".to_string())?;
        let up = match dir {
            "up" => true,
            "down" => false,
            other => return Err(format!("scale must be \"up\" or \"down\", got {other:?}")),
        };
        let resource = v
            .get("resource")
            .and_then(|r| r.as_str())
            .ok_or_else(|| "scale directive needs a \"resource\"".to_string())?
            .to_string();
        return Ok(Some(ServeLine::Scale { at, resource, up }));
    }

    let application = v
        .get("app")
        .and_then(|a| a.as_str())
        .ok_or_else(|| "request needs an \"app\"".to_string())?
        .to_string();
    let agent = v
        .get("agent")
        .and_then(|a| a.as_str())
        .ok_or_else(|| "request needs an \"agent\"".to_string())?
        .to_string();
    let environment = match v.get("env").and_then(|e| e.as_str()) {
        None | Some("test") => ExecEnv::Test,
        Some("mpi") => ExecEnv::Mpi,
        Some("pvm") => ExecEnv::Pvm,
        Some(other) => return Err(format!("unknown env {other:?}")),
    };
    // `deadline` (float) is relative to arrival; `deadline_us` absolute.
    let deadline = if let Some(t) = v.get("deadline_us") {
        let ticks = t
            .as_u64()
            .ok_or_else(|| "deadline_us must be an unsigned tick count".to_string())?;
        SimTime::from_ticks(ticks)
    } else {
        let rel = v
            .get("deadline")
            .and_then(|d| d.as_f64())
            .ok_or_else(|| "request needs a \"deadline\" (seconds after arrival)".to_string())?;
        if !rel.is_finite() || rel < 0.0 {
            return Err("deadline must be finite and non-negative".to_string());
        }
        SimTime::from_ticks(
            at.ticks()
                .saturating_add(SimTime::from_secs_f64(rel).ticks()),
        )
    };
    Ok(Some(ServeLine::Request(GeneratedRequest {
        at,
        agent,
        application,
        deadline,
        environment,
    })))
}

/// Parse a whole stream, reporting the first bad line with its number.
pub fn parse_stream(text: &str, default_at: SimTime) -> Result<Vec<ServeLine>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(l) = parse_line(line, default_at).map_err(|e| format!("line {}: {e}", i + 1))? {
            out.push(l);
        }
    }
    Ok(out)
}

/// Write one request as a tick-exact JSONL line that re-parses to the
/// identical [`GeneratedRequest`] — the bridge that lets a generated
/// batch workload be replayed through serve bit-identically.
pub fn write_request(r: &GeneratedRequest) -> String {
    let env = match r.environment {
        ExecEnv::Mpi => "mpi",
        ExecEnv::Pvm => "pvm",
        ExecEnv::Test => "test",
    };
    let mut out = String::new();
    out.push_str("{\"at_us\": ");
    out.push_str(&r.at.ticks().to_string());
    out.push_str(", \"agent\": ");
    json::write_escaped(&mut out, &r.agent);
    out.push_str(", \"app\": ");
    json::write_escaped(&mut out, &r.application);
    out.push_str(", \"env\": \"");
    out.push_str(env);
    out.push_str("\", \"deadline_us\": ");
    out.push_str(&r.deadline.ticks().to_string());
    out.push('}');
    out
}

/// Write one scale directive as a JSONL line.
pub fn write_scale(at: SimTime, resource: &str, up: bool) -> String {
    let mut out = String::new();
    out.push_str("{\"at_us\": ");
    out.push_str(&at.ticks().to_string());
    out.push_str(", \"scale\": \"");
    out.push_str(if up { "up" } else { "down" });
    out.push_str("\", \"resource\": ");
    json::write_escaped(&mut out, resource);
    out.push('}');
    out
}

/// The canonical tick-exact JSONL form of one line — what the WAL and
/// recordings store, guaranteed to re-parse bit-identically.
pub fn canonical_line(l: &ServeLine) -> String {
    match l {
        ServeLine::Request(r) => write_request(r),
        ServeLine::Scale { at, resource, up } => write_scale(*at, resource, *up),
    }
}

/// Stamp a line with its *effective* schedule instant: injection clamps
/// `at` to now (`GridSystem::inject_request` schedules at
/// `max(at, now)`), so logging the clamped value makes the logged
/// instant equal the applied instant — replay then schedules the same
/// event at the same tick a live session did.
pub fn stamp(l: &ServeLine, now: SimTime) -> ServeLine {
    match l {
        ServeLine::Request(r) => ServeLine::Request(GeneratedRequest {
            at: r.at.max(now),
            ..r.clone()
        }),
        ServeLine::Scale { at, resource, up } => ServeLine::Scale {
            at: (*at).max(now),
            resource: resource.clone(),
            up: *up,
        },
    }
}

/// The `--record` header: everything needed to rebuild the served grid,
/// making the recording a self-contained regression case.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordMeta {
    /// Topology spec string (`case-study`, `flat:n:p`, `tree:l:b:p`).
    pub topology: String,
    /// Workload/grid RNG seed.
    pub seed: u64,
    /// Local policy name (`fifo`/`ga`/`batch`).
    pub policy: String,
    /// Agent-based dispatch enabled.
    pub agents: bool,
    /// Log-normal execution-noise sigma (0 = noise-free).
    pub noise: f64,
    /// The online self-tuner was attached.
    pub tune: bool,
}

/// Serialise the recording header line.
pub fn write_meta(m: &RecordMeta) -> String {
    let mut out = String::new();
    out.push_str("{\"record\": \"agentgrid-serve/1\", \"topology\": ");
    json::write_escaped(&mut out, &m.topology);
    out.push_str(&format!(
        ", \"seed\": {}, \"policy\": \"{}\", \"agents\": {}, \"noise\": {}, \"tune\": {}}}",
        m.seed, m.policy, m.agents, m.noise, m.tune
    ));
    out
}

fn parse_meta(v: &Value) -> Result<RecordMeta, String> {
    let version = v.get("record").and_then(Value::as_str).unwrap_or_default();
    if version != "agentgrid-serve/1" {
        return Err(format!("unsupported recording version {version:?}"));
    }
    Ok(RecordMeta {
        topology: v
            .get("topology")
            .and_then(Value::as_str)
            .ok_or("recording header needs a topology")?
            .to_string(),
        seed: v
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or("recording header needs a seed")?,
        policy: v
            .get("policy")
            .and_then(Value::as_str)
            .unwrap_or("ga")
            .to_string(),
        agents: v.get("agents").and_then(Value::as_bool).unwrap_or(false),
        noise: v.get("noise").and_then(Value::as_f64).unwrap_or(0.0),
        tune: v.get("tune").and_then(Value::as_bool).unwrap_or(false),
    })
}

/// Parse a `--replay` file: a `--record` stream (optional meta header +
/// canonical lines) **or** a raw write-ahead log, whose records are
/// detected per line and unwrapped to the canonical line they carry.
/// Either way the returned lines preserve file order — the order they
/// were accepted in.
pub fn read_recording(text: &str) -> Result<(Option<RecordMeta>, Vec<ServeLine>), String> {
    let mut meta = None;
    let mut lines = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let fail = |e: String| format!("line {}: {e}", i + 1);
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if lines.is_empty() && meta.is_none() {
            if let Ok(v) = Value::parse(trimmed) {
                if v.get("record").is_some() {
                    meta = Some(parse_meta(&v).map_err(fail)?);
                    continue;
                }
            }
        }
        let inner = match crate::wal::decode_record(trimmed) {
            Some(rec) => rec.line,
            None => trimmed.to_string(),
        };
        if let Some(l) = parse_line(&inner, SimTime::ZERO).map_err(fail)? {
            lines.push(l);
        }
    }
    Ok((meta, lines))
}

/// Write a whole stream of lines, requests and directives interleaved.
pub fn write_stream(lines: &[ServeLine]) -> String {
    let mut out = String::new();
    for l in lines {
        match l {
            ServeLine::Request(r) => out.push_str(&write_request(r)),
            ServeLine::Scale { at, resource, up } => out.push_str(&write_scale(*at, resource, *up)),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_ticks() {
        let r = GeneratedRequest {
            at: SimTime::from_ticks(1_234_567),
            agent: "S1".into(),
            application: "sweep3d".into(),
            deadline: SimTime::from_ticks(301_234_567),
            environment: ExecEnv::Test,
        };
        let line = write_request(&r);
        let back = parse_line(&line, SimTime::ZERO).unwrap().unwrap();
        assert_eq!(back, ServeLine::Request(r));
    }

    #[test]
    fn human_form_uses_relative_deadline() {
        let l = parse_line(
            r#"{"app": "fft", "agent": "S2", "deadline": 300, "at": 1.5}"#,
            SimTime::ZERO,
        )
        .unwrap()
        .unwrap();
        let ServeLine::Request(r) = l else {
            panic!("expected a request")
        };
        assert_eq!(r.at, SimTime::from_secs_f64(1.5));
        assert_eq!(r.deadline, SimTime::from_secs_f64(301.5));
        assert_eq!(r.environment, ExecEnv::Test);
    }

    #[test]
    fn missing_at_takes_the_default() {
        let now = SimTime::from_secs(42);
        let l = parse_line(r#"{"app": "fft", "agent": "S1", "deadline": 10}"#, now)
            .unwrap()
            .unwrap();
        assert_eq!(l.at(), now);
    }

    #[test]
    fn scale_directives_parse_and_round_trip() {
        let l = parse_line(
            r#"{"at": 5, "scale": "down", "resource": "S3"}"#,
            SimTime::ZERO,
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            l,
            ServeLine::Scale {
                at: SimTime::from_secs(5),
                resource: "S3".into(),
                up: false
            }
        );
        let text = write_stream(std::slice::from_ref(&l));
        assert_eq!(parse_stream(&text, SimTime::ZERO).unwrap(), vec![l]);
    }

    #[test]
    fn blanks_and_comments_are_skipped() {
        let text = "\n# a comment\n  \n{\"scale\": \"up\", \"resource\": \"R\", \"at\": 1}\n";
        assert_eq!(parse_stream(text, SimTime::ZERO).unwrap().len(), 1);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let err = parse_stream("{\"app\": \"fft\"}\n", SimTime::ZERO).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse_stream("# ok\n{nope}\n", SimTime::ZERO).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    fn sample_lines() -> Vec<ServeLine> {
        vec![
            ServeLine::Request(GeneratedRequest {
                at: SimTime::from_ticks(1_500_000),
                agent: "R1".into(),
                application: "fft".into(),
                deadline: SimTime::from_ticks(31_500_000),
                environment: ExecEnv::Test,
            }),
            ServeLine::Scale {
                at: SimTime::from_secs(5),
                resource: "R2".into(),
                up: false,
            },
        ]
    }

    #[test]
    fn stamp_clamps_to_now_and_preserves_future_instants() {
        let lines = sample_lines();
        let late = SimTime::from_secs(100);
        for l in &lines {
            // Past instants clamp to now — the effective schedule time.
            assert_eq!(stamp(l, late).at(), late);
            // Future instants pass through untouched.
            assert_eq!(stamp(l, SimTime::ZERO), *l);
        }
        // Deadlines survive stamping (only `at` moves).
        let ServeLine::Request(r) = stamp(&lines[0], late) else {
            panic!("stamp must preserve the variant");
        };
        assert_eq!(r.deadline, SimTime::from_ticks(31_500_000));
    }

    #[test]
    fn canonical_lines_reparse_bit_identically() {
        for l in sample_lines() {
            let text = canonical_line(&l);
            let back = parse_line(&text, SimTime::from_secs(999)).unwrap().unwrap();
            // The default_at is irrelevant: canonical lines are
            // tick-exact.
            assert_eq!(back, l);
        }
    }

    #[test]
    fn recordings_round_trip_with_their_header() {
        let meta = RecordMeta {
            topology: "flat:3:4".into(),
            seed: 42,
            policy: "ga".into(),
            agents: true,
            noise: 0.25,
            tune: true,
        };
        let lines = sample_lines();
        let mut text = format!("{}\n", write_meta(&meta));
        for l in &lines {
            text.push_str(&canonical_line(l));
            text.push('\n');
        }
        let (back_meta, back_lines) = read_recording(&text).expect("recording parses");
        assert_eq!(back_meta, Some(meta));
        assert_eq!(back_lines, lines);
    }

    #[test]
    fn a_raw_wal_reads_as_a_recording_in_file_order() {
        let lines = sample_lines();
        let mut text = String::new();
        for (i, l) in lines.iter().enumerate() {
            let rec = crate::wal::WalRecord {
                seq: i as u64 + 1,
                epoch: 0,
                line: canonical_line(l),
            };
            text.push_str(&crate::wal::encode_record(&rec));
            text.push('\n');
        }
        let (meta, back) = read_recording(&text).expect("wal reads as recording");
        assert_eq!(meta, None);
        assert_eq!(back, lines);
    }

    #[test]
    fn headerless_files_are_plain_streams() {
        let text = "{\"scale\": \"up\", \"resource\": \"R2\", \"at\": 9}\n";
        let (meta, lines) = read_recording(text).expect("plain stream reads");
        assert_eq!(meta, None);
        assert_eq!(lines.len(), 1);
    }
}
