//! The online self-tuner (the `--tune` flag).
//!
//! A small monitoring → analysis → tuning loop in the style of the
//! agent-based performance-tuning literature (arXiv:1005.2027,
//! arXiv:1005.2037): every `interval` of sim time the tuner samples the
//! grid's queue backlog, classifies the pressure against hysteresis
//! thresholds, and moves three runtime knobs one *level* at a time —
//!
//! * the GA generation budget (more search when queues deepen, the
//!   baseline budget when they drain),
//! * the advertisement pull period (fresher capability data under
//!   pressure, the paper's economical cadence when idle),
//! * the ACT entry TTL (stale capability entries age out faster while
//!   the grid is churning).
//!
//! Every change is emitted as an [`Event::TunerAdjust`] telemetry event,
//! so a served stream records exactly what the tuner did and when, and
//! the invariant checker can run over the adjusted stream.
//!
//! # Durability and replay
//!
//! The tuner needs no entries of its own in the write-ahead log: every
//! adjustment is a deterministic function of grid state and sim time
//! (backlog sampled at fixed sim-time instants, hysteresis levels with
//! no randomness or wall-clock input). Both a crash-recovered session
//! and a `--replay` run construct the tuner fresh at boot and drive it
//! through the identical event sequence, so it re-derives the same
//! levels at the same instants and the replayed `tuner_adjust` stream
//! matches the original exactly. Logging the accepted input lines is
//! sufficient; logging tuner decisions would be redundant state.

use agentgrid::GridSystem;
use agentgrid_sim::{SimDuration, SimTime};
use agentgrid_telemetry::{Event, Telemetry};

/// Tuning thresholds and cadence.
#[derive(Clone, Copy, Debug)]
pub struct TunerConfig {
    /// Sim-time between analysis passes.
    pub interval: SimDuration,
    /// Queued tasks per resource above which pressure escalates.
    pub high_backlog_per_resource: f64,
    /// Queued tasks per resource below which pressure relaxes. Must be
    /// below `high_backlog_per_resource`; the gap is the hysteresis
    /// dead-zone that stops the tuner flapping.
    pub low_backlog_per_resource: f64,
    /// Highest escalation level (each level doubles/halves the knobs).
    pub max_level: u32,
}

impl Default for TunerConfig {
    fn default() -> TunerConfig {
        TunerConfig {
            interval: SimDuration::from_secs(10),
            high_backlog_per_resource: 4.0,
            low_backlog_per_resource: 1.0,
            max_level: 3,
        }
    }
}

/// Fallback ACT TTL base when the grid runs with the paper's
/// never-expire default: the tuner has to pick *some* finite horizon to
/// tighten from.
const DEFAULT_TTL_BASE: SimDuration = SimDuration::from_secs(120);

/// The running tuner. Attach one per served grid; call [`Tuner::tick`]
/// after every handled event — passes between analysis instants return
/// immediately.
pub struct Tuner {
    cfg: TunerConfig,
    resources: usize,
    next_at: SimTime,
    level: u32,
    /// Baselines captured at attach time; levels scale away from these.
    base_ga: Option<usize>,
    base_pull: Option<SimDuration>,
    base_ttl: Option<SimDuration>,
    adjustments: u64,
}

impl Tuner {
    /// Attach a tuner to `grid`, capturing the baseline knob values.
    pub fn new(cfg: TunerConfig, resources: usize, grid: &GridSystem) -> Tuner {
        assert!(
            cfg.low_backlog_per_resource < cfg.high_backlog_per_resource,
            "tuner thresholds must leave a hysteresis gap"
        );
        Tuner {
            cfg,
            resources: resources.max(1),
            next_at: SimTime::ZERO + cfg.interval,
            level: 0,
            base_ga: grid.ga_generations(),
            base_pull: grid.pull_period(),
            base_ttl: grid.act_ttl(),
            adjustments: 0,
        }
    }

    /// Total knob changes applied so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// The current escalation level (0 = baseline).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Run the monitoring → analysis → tuning pass if an interval has
    /// elapsed. Returns the number of knob changes applied this call.
    pub fn tick(&mut self, now: SimTime, grid: &mut GridSystem, telemetry: &Telemetry) -> u64 {
        if now < self.next_at {
            return 0;
        }
        // Catch up in one hop: analysis uses current state, so replaying
        // skipped intervals would only repeat the same observation.
        while self.next_at <= now {
            self.next_at += self.cfg.interval;
        }
        let pressure = grid.queued_tasks() as f64 / self.resources as f64;
        let (target, trigger) = if pressure > self.cfg.high_backlog_per_resource {
            (
                self.level.saturating_add(1).min(self.cfg.max_level),
                "backlog-high",
            )
        } else if pressure < self.cfg.low_backlog_per_resource {
            (self.level.saturating_sub(1), "backlog-low")
        } else {
            return 0;
        };
        if target == self.level {
            return 0;
        }
        self.level = target;
        let applied = self.apply(now, grid, telemetry, trigger);
        self.adjustments += applied;
        applied
    }

    /// Drive the three knobs to the current level, emitting one
    /// `TunerAdjust` per knob that actually moved.
    fn apply(
        &self,
        now: SimTime,
        grid: &mut GridSystem,
        telemetry: &Telemetry,
        trigger: &str,
    ) -> u64 {
        let mut applied = 0;
        let ticks = now.ticks();
        let shift = self.level;

        if let Some(base) = self.base_ga {
            let from = grid.ga_generations().unwrap_or(base) as u64;
            let to = (base << shift).max(1) as u64;
            if from != to && grid.set_ga_generations(to as usize) {
                telemetry.emit(ticks, || Event::TunerAdjust {
                    parameter: "ga_generations".to_string(),
                    from,
                    to,
                    trigger: trigger.to_string(),
                });
                applied += 1;
            }
        }

        if let Some(base) = self.base_pull {
            let from = grid.pull_period().unwrap_or(base).ticks();
            let to = (base.ticks() >> shift).max(1);
            if from != to && grid.set_pull_period(SimDuration::from_ticks(to)) {
                telemetry.emit(ticks, || Event::TunerAdjust {
                    parameter: "pull_period_us".to_string(),
                    from,
                    to,
                    trigger: trigger.to_string(),
                });
                applied += 1;
            }
        }

        // TTL: tick values use 0 for "never expires" (the paper default).
        let from = grid.act_ttl().map_or(0, |t| t.ticks());
        let to = if shift == 0 {
            self.base_ttl.map_or(0, |t| t.ticks())
        } else {
            (self.base_ttl.unwrap_or(DEFAULT_TTL_BASE).ticks() >> shift).max(1)
        };
        if from != to {
            grid.set_act_ttl((to > 0).then(|| SimDuration::from_ticks(to)));
            telemetry.emit(ticks, || Event::TunerAdjust {
                parameter: "act_ttl_us".to_string(),
                from,
                to,
                trigger: trigger.to_string(),
            });
            applied += 1;
        }
        applied
    }
}
