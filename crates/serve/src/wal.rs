//! The serve-mode write-ahead log (`--wal`).
//!
//! Every accepted ingestion line — requests, elasticity directives —
//! is appended here *before* it is applied to the grid, as one JSON
//! record per line:
//!
//! ```text
//! {"seq": 3, "epoch": 0, "line": "{\"at_us\": ...}", "sum": "9f2c..."}
//! ```
//!
//! * `seq` is contiguous from 1 and monotonic across process restarts;
//! * `epoch` counts recoveries (0 for the first session, +1 each time a
//!   log with history is resumed);
//! * `line` is the canonical tick-exact serve line, stamped with its
//!   effective schedule instant (`at := max(at, now)` at accept time);
//! * `sum` is an FNV-1a 64 checksum over `"{seq}:{epoch}:{line}"`.
//!
//! Torn tails are expected, not errors: a crash can cut the file at any
//! byte boundary, so [`parse_wal`] stops at the first incomplete,
//! corrupt or non-contiguous record and reports the valid prefix.
//! [`WalWriter::resume`] truncates the file back to that prefix and
//! continues the sequence at the next epoch, which is exactly what
//! crash recovery needs.
//!
//! Durability is policy-driven ([`SyncPolicy`]): `always` fsyncs every
//! record, `batch` every [`BATCH_SYNC_EVERY`] records and on flush,
//! `off` never (data still reaches the OS page cache on every append,
//! so a process kill loses at most the tail the filesystem had not
//! written — which torn-tail recovery absorbs).

use agentgrid_telemetry::json::{self, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};

/// Records appended between fsyncs under [`SyncPolicy::Batch`].
pub const BATCH_SYNC_EVERY: u64 = 64;

/// When to push appended records to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every record: no accepted line is ever lost, at
    /// one disk round-trip per line.
    Always,
    /// `fsync` every [`BATCH_SYNC_EVERY`] records and on flush: bounded
    /// loss window, near-`off` throughput.
    Batch,
    /// Never `fsync`: the OS page cache is the only durability.
    Off,
}

impl SyncPolicy {
    /// Parse the `--wal-sync` flag value.
    pub fn parse(s: &str) -> Result<SyncPolicy, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "batch" => Ok(SyncPolicy::Batch),
            "off" => Ok(SyncPolicy::Off),
            other => Err(format!(
                "--wal-sync must be always|batch|off, got `{other}`"
            )),
        }
    }
}

/// Where and how to keep the log — the `--wal`/`--wal-sync` pair.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Log file path; created if missing, recovered if it has records.
    pub path: String,
    /// Fsync policy for appends.
    pub sync: SyncPolicy,
}

/// One complete, checksum-verified log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// 1-based contiguous sequence number.
    pub seq: u64,
    /// Recovery epoch the record was written in.
    pub epoch: u64,
    /// The canonical serve line that was accepted.
    pub line: String,
}

/// What reading a log back yields: the valid prefix plus how much tail
/// (if any) was torn off by a crash.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// Complete records, in append (= application) order.
    pub records: Vec<WalRecord>,
    /// Bytes of the valid prefix (where a resumed writer continues).
    pub valid_bytes: u64,
    /// Bytes past the last complete record, discarded on resume.
    pub truncated_bytes: u64,
}

impl WalRecovery {
    /// Highest recovered sequence number (0 when the log is empty).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map_or(0, |r| r.seq)
    }

    /// Epoch of the last record (0 when the log is empty).
    pub fn last_epoch(&self) -> u64 {
        self.records.last().map_or(0, |r| r.epoch)
    }

    /// True when the file held nothing at all — not even a torn tail —
    /// so the next session is the log's first (epoch 0).
    pub fn is_fresh(&self) -> bool {
        self.records.is_empty() && self.truncated_bytes == 0
    }
}

/// FNV-1a 64 over `"{seq}:{epoch}:{line}"` — std-only, stable, and
/// plenty to tell a torn or bit-flipped record from a real one.
fn checksum(seq: u64, epoch: u64, line: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(seq.to_string().as_bytes());
    eat(b":");
    eat(epoch.to_string().as_bytes());
    eat(b":");
    eat(line.as_bytes());
    hash
}

/// Encode one record as its on-disk JSON line (no trailing newline).
pub fn encode_record(r: &WalRecord) -> String {
    let mut out = String::new();
    out.push_str("{\"seq\": ");
    out.push_str(&r.seq.to_string());
    out.push_str(", \"epoch\": ");
    out.push_str(&r.epoch.to_string());
    out.push_str(", \"line\": ");
    json::write_escaped(&mut out, &r.line);
    out.push_str(", \"sum\": \"");
    out.push_str(&format!("{:016x}", checksum(r.seq, r.epoch, &r.line)));
    out.push_str("\"}");
    out
}

/// Decode one on-disk line; `None` for anything malformed, from cut-off
/// JSON to a checksum mismatch.
pub fn decode_record(line: &str) -> Option<WalRecord> {
    let v = Value::parse(line.trim()).ok()?;
    let seq = v.get("seq")?.as_u64()?;
    let epoch = v.get("epoch")?.as_u64()?;
    let text = v.get("line")?.as_str()?.to_string();
    let sum = v.get("sum")?.as_str()?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    (sum == checksum(seq, epoch, &text)).then_some(WalRecord {
        seq,
        epoch,
        line: text,
    })
}

/// Scan raw log bytes into the longest valid prefix: records must be
/// newline-complete, checksum-clean, contiguous from seq 1 and
/// epoch-monotonic. Everything past the first violation is torn tail.
pub fn parse_wal(bytes: &[u8]) -> WalRecovery {
    let mut rec = WalRecovery::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        // A record is only complete once its newline landed on disk.
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let Ok(text) = std::str::from_utf8(&bytes[pos..pos + nl]) else {
            break;
        };
        let Some(r) = decode_record(text) else { break };
        if r.seq != rec.last_seq() + 1 || r.epoch < rec.last_epoch() {
            break;
        }
        rec.records.push(r);
        pos += nl + 1;
        rec.valid_bytes = pos as u64;
    }
    rec.truncated_bytes = bytes.len() as u64 - rec.valid_bytes;
    rec
}

/// Read and scan a log file; a missing file is an empty (fresh) log.
pub fn read_wal(path: &str) -> io::Result<WalRecovery> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(parse_wal(&bytes))
}

/// The appender. One per served grid; every accepted line goes through
/// [`WalWriter::append`] before [`GridSystem::inject_request`] sees it.
///
/// [`GridSystem::inject_request`]: agentgrid::GridSystem::inject_request
pub struct WalWriter {
    file: File,
    policy: SyncPolicy,
    seq: u64,
    epoch: u64,
    since_sync: u64,
    unsynced: u64,
}

impl WalWriter {
    /// Open `path` for appending after [`read_wal`] produced `recovery`:
    /// the torn tail (if any) is cut off with `set_len`, the sequence
    /// continues where the valid prefix ends, and a log with history
    /// moves to the next epoch.
    pub fn resume(path: &str, policy: SyncPolicy, recovery: &WalRecovery) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(recovery.valid_bytes)?;
        file.seek(SeekFrom::End(0))?;
        let epoch = if recovery.is_fresh() {
            0
        } else {
            recovery.last_epoch() + 1
        };
        Ok(WalWriter {
            file,
            policy,
            seq: recovery.last_seq(),
            epoch,
            since_sync: 0,
            unsynced: 0,
        })
    }

    /// Append one accepted line. Returns `(seq, bytes_on_disk)` for the
    /// new record. The write is a single `write_all` of the full record
    /// plus newline — a crash mid-call leaves at worst a torn tail.
    pub fn append(&mut self, line: &str) -> io::Result<(u64, u64)> {
        let record = WalRecord {
            seq: self.seq + 1,
            epoch: self.epoch,
            line: line.to_string(),
        };
        let mut text = encode_record(&record);
        text.push('\n');
        self.file.write_all(text.as_bytes())?;
        self.seq = record.seq;
        self.unsynced += 1;
        self.since_sync += 1;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::Batch if self.since_sync >= BATCH_SYNC_EVERY => self.sync()?,
            _ => {}
        }
        Ok((record.seq, text.len() as u64))
    }

    /// Push everything to stable storage (graceful shutdown; no-op work
    /// under `off`, where the contract is explicitly page-cache-only).
    pub fn flush(&mut self) -> io::Result<()> {
        match self.policy {
            SyncPolicy::Off => {
                self.unsynced = 0;
                Ok(())
            }
            _ => self.sync(),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.since_sync = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Sequence number of the last appended record.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The epoch this writer stamps on new records.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records appended but not yet fsynced (the `wal_lag` gauge).
    pub fn lag(&self) -> u64 {
        self.unsynced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("agentgrid-wal-test-{tag}-{}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn records_round_trip_with_checksums() {
        let r = WalRecord {
            seq: 7,
            epoch: 2,
            line: "{\"scale\": \"down\", \"resource\": \"S3 \\\"q\\\"\"}".to_string(),
        };
        let text = encode_record(&r);
        assert_eq!(decode_record(&text), Some(r.clone()));
        // Any single-byte corruption must be caught.
        let mut bad = text.into_bytes();
        let mid = bad.len() / 2;
        bad[mid] = bad[mid].wrapping_add(1);
        let bad = String::from_utf8_lossy(&bad).into_owned();
        assert_eq!(decode_record(&bad), None, "corrupt record decoded: {bad}");
    }

    #[test]
    fn parse_stops_at_every_torn_boundary() {
        let lines = ["{\"a\": 1}", "{\"b\": 2}", "{\"c\": 3}"];
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, l) in lines.iter().enumerate() {
            let mut t = encode_record(&WalRecord {
                seq: i as u64 + 1,
                epoch: 0,
                line: (*l).to_string(),
            });
            t.push('\n');
            bytes.extend_from_slice(t.as_bytes());
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let rec = parse_wal(&bytes[..cut]);
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(rec.last_seq(), complete as u64, "cut at byte {cut}");
            assert_eq!(rec.valid_bytes, boundaries[complete] as u64);
            assert_eq!(rec.truncated_bytes, (cut - boundaries[complete]) as u64);
        }
    }

    #[test]
    fn parse_rejects_sequence_gaps() {
        let mut bytes = Vec::new();
        for seq in [1u64, 2, 4] {
            let mut t = encode_record(&WalRecord {
                seq,
                epoch: 0,
                line: "{}".to_string(),
            });
            t.push('\n');
            bytes.extend_from_slice(t.as_bytes());
        }
        let rec = parse_wal(&bytes);
        assert_eq!(rec.last_seq(), 2, "the gap at seq 4 ends the valid prefix");
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn resume_truncates_and_bumps_epoch() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);

        // Session 1: fresh log, epoch 0.
        let fresh = read_wal(&path).expect("read missing");
        assert!(fresh.is_fresh());
        let mut w = WalWriter::resume(&path, SyncPolicy::Batch, &fresh).expect("create");
        assert_eq!(w.epoch(), 0);
        for i in 0..3 {
            let (seq, _) = w.append(&format!("{{\"n\": {i}}}")).expect("append");
            assert_eq!(seq, i + 1);
        }
        w.flush().expect("flush");
        assert_eq!(w.lag(), 0);
        drop(w);

        // Crash: tear the last record mid-byte.
        let full = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &full[..full.len() - 5]).expect("tear");

        // Session 2: recover to seq 2, continue at epoch 1.
        let rec = read_wal(&path).expect("read torn");
        assert_eq!(rec.last_seq(), 2);
        assert!(rec.truncated_bytes > 0);
        let mut w = WalWriter::resume(&path, SyncPolicy::Always, &rec).expect("resume");
        assert_eq!(w.epoch(), 1);
        let (seq, _) = w.append("{\"n\": 9}").expect("append after recovery");
        assert_eq!(seq, 3);
        assert_eq!(w.lag(), 0, "always-sync leaves no lag");
        drop(w);

        let rec = read_wal(&path).expect("final read");
        assert_eq!(rec.last_seq(), 3);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.records[2].epoch, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_policies_track_lag() {
        let path = temp_path("lag");
        let _ = std::fs::remove_file(&path);
        let mut w =
            WalWriter::resume(&path, SyncPolicy::Off, &WalRecovery::default()).expect("create");
        for _ in 0..5 {
            w.append("{}").expect("append");
        }
        assert_eq!(w.lag(), 5, "off never syncs");
        w.flush().expect("flush");
        assert_eq!(w.lag(), 0, "flush settles the gauge even under off");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn policy_flag_parses() {
        assert_eq!(SyncPolicy::parse("always"), Ok(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("batch"), Ok(SyncPolicy::Batch));
        assert_eq!(SyncPolicy::parse("off"), Ok(SyncPolicy::Off));
        assert!(SyncPolicy::parse("sometimes").is_err());
    }
}
