//! The simulation engine: a virtual clock plus an event queue.
//!
//! The engine deliberately does *not* own the world it drives. A driver
//! (see `agentgrid::experiment`) owns both the [`Simulation`] and its own
//! state, and pulls events out one at a time:
//!
//! ```
//! use agentgrid_sim::{Simulation, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulation::new();
//! sim.schedule(SimTime::from_secs(3), Ev::Ping(1));
//! let mut fired = vec![];
//! while let Some(ev) = sim.step() {
//!     // Handlers may schedule follow-up events through `sim`.
//!     if let Ev::Ping(n) = ev {
//!         if n < 3 {
//!             sim.schedule_in(SimDuration::from_secs(1), Ev::Ping(n + 1));
//!         }
//!         fired.push(n);
//!     }
//! }
//! assert_eq!(fired, [1, 2, 3]);
//! assert_eq!(sim.now(), SimTime::from_secs(5));
//! ```

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use agentgrid_telemetry::{Event, Telemetry};

/// How often the engine emits an [`Event::EngineStep`] progress marker
/// when telemetry is enabled.
const STEP_MARK_EVERY: u64 = 256;

/// A virtual clock driving an event queue of type `E`.
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    horizon: Option<SimTime>,
    step_limit: Option<u64>,
    telemetry: Telemetry,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// A fresh simulation with the clock at zero, on the default
    /// (timing-wheel) event queue.
    pub fn new() -> Self {
        Self::with_queue(EventQueue::new())
    }

    /// A fresh simulation driving the given event queue. Both
    /// [`EventQueue`] backends deliver identical schedules; pick the
    /// heap explicitly only for baseline comparisons.
    pub fn with_queue(queue: EventQueue<E>) -> Self {
        Simulation {
            queue,
            now: SimTime::ZERO,
            processed: 0,
            horizon: None,
            step_limit: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Record periodic [`Event::EngineStep`] markers (and horizon events)
    /// through `telemetry`. Disabled by default.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Stop delivering events scheduled after `at` (they remain queued but
    /// [`Simulation::step`] returns `None`). Useful for bounded experiment
    /// runs and for defensive termination in tests.
    pub fn set_horizon(&mut self, at: SimTime) {
        self.horizon = Some(at);
        self.telemetry
            .emit(self.now.ticks(), || Event::EngineHorizon {
                horizon: at.ticks(),
            });
    }

    /// Refuse to deliver more than `limit` events in total: once
    /// [`Simulation::processed`] reaches the limit, [`Simulation::step`]
    /// returns `None` with events still queued. A livelock guard for
    /// fuzzing and defensive tests — a buggy handler that reschedules
    /// forever terminates instead of hanging, and the caller can detect
    /// the tripped limit via [`Simulation::step_limit_reached`].
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = Some(limit);
    }

    /// Whether a step limit is set and has been exhausted.
    pub fn step_limit_reached(&self) -> bool {
        self.step_limit.is_some_and(|l| self.processed >= l)
    }

    /// How many more events the step limit permits (`None` = unlimited).
    /// Batch drivers use this to bound speculative [`Simulation::pop_entry`]
    /// runs so replay can never trip the limit mid-batch.
    pub fn steps_remaining(&self) -> Option<u64> {
        self.step_limit.map(|l| l.saturating_sub(self.processed))
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The delivery horizon, if one was set.
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The instant of the next pending event without delivering it, or
    /// `None` when the queue is empty. Ignores horizon and step limits —
    /// this is an injection hook for external drivers (the serve loop)
    /// that interleave runtime event injection with stepping: inject
    /// everything due at or before `peek_at()`, then `step()`.
    pub fn peek_at(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to the
    /// current instant (and will still fire) so that rounding at second
    /// boundaries can never deadlock a run, but debug builds assert.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        self.queue.push(at.max(self.now), event);
    }

    /// Schedule `event` after `delay` from the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Remove and return the earliest queue entry — `(time, seq, event)`
    /// — *without* advancing the clock, the processed counter or the
    /// step-marker telemetry. Ignores horizon and step limits.
    ///
    /// This is the speculative half of the sharded batch protocol: a
    /// driver inspects upcoming entries, then puts every one of them
    /// back with [`Simulation::restore_entry`] and re-delivers through
    /// [`Simulation::step`], so the observable run (clock, counters,
    /// telemetry, FIFO order) is identical to never having peeked.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        self.queue.pop_entry()
    }

    /// Put back an entry obtained from [`Simulation::pop_entry`] under
    /// its original `(time, seq)` key. The sequence counter is not
    /// advanced, so events scheduled afterwards still order after it.
    pub fn restore_entry(&mut self, at: SimTime, seq: u64, event: E) {
        self.queue.push_at_seq(at, seq, event);
    }

    /// Pre-size queue storage for about `additional` pending events
    /// (see [`EventQueue::reserve`]).
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Tear the simulation down and recover its event queue for reuse
    /// (reset and handed to [`Simulation::with_queue`] again), keeping
    /// the queue's grown allocations across runs.
    pub fn into_queue(self) -> EventQueue<E> {
        let mut queue = self.queue;
        queue.reset();
        queue
    }

    /// Advance to and return the next event, or `None` when the queue is
    /// exhausted or the horizon has been reached.
    pub fn step(&mut self) -> Option<E> {
        if self.step_limit_reached() {
            return None;
        }
        if let (Some(h), Some(t)) = (self.horizon, self.queue.peek_time()) {
            if t > h {
                return None;
            }
        }
        let (at, event) = self.queue.pop()?;
        self.now = at;
        self.processed += 1;
        if self.processed.is_multiple_of(STEP_MARK_EVERY) {
            let (processed, pending) = (self.processed, self.queue.len() as u64);
            self.telemetry.emit(self.now.ticks(), || Event::EngineStep {
                processed,
                pending,
            });
        }
        Some(event)
    }

    /// Run to completion, invoking `handler` for every event. The handler
    /// receives the simulation so it can schedule follow-ups.
    pub fn run_with<W>(
        &mut self,
        world: &mut W,
        mut handler: impl FnMut(&mut W, &mut Simulation<E>, E),
    ) {
        while let Some(ev) = self.step() {
            handler(world, self, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_secs(2), Ev::Tick(0));
        sim.schedule(SimTime::from_secs(8), Ev::Tick(1));
        assert_eq!(sim.step(), Some(Ev::Tick(0)));
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.step(), Some(Ev::Tick(1)));
        assert_eq!(sim.now(), SimTime::from_secs(8));
        assert_eq!(sim.step(), None);
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_secs(5), Ev::Tick(0));
        sim.step();
        sim.schedule_in(SimDuration::from_secs(3), Ev::Tick(1));
        sim.step();
        assert_eq!(sim.now(), SimTime::from_secs(8));
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_secs(1), Ev::Tick(0));
        sim.schedule(SimTime::from_secs(100), Ev::Tick(1));
        sim.set_horizon(SimTime::from_secs(50));
        assert_eq!(sim.step(), Some(Ev::Tick(0)));
        assert_eq!(sim.step(), None);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn step_limit_stops_runaway_delivery() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, Ev::Tick(0));
        sim.set_step_limit(5);
        let mut fired = 0;
        while let Some(Ev::Tick(n)) = sim.step() {
            fired += 1;
            // A livelocked handler: always reschedules itself.
            sim.schedule_in(SimDuration::from_secs(1), Ev::Tick(n + 1));
        }
        assert_eq!(fired, 5);
        assert!(sim.step_limit_reached());
        assert_eq!(sim.pending(), 1, "the runaway event is still queued");
    }

    #[test]
    fn run_with_drives_world() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, Ev::Tick(3));
        let mut total = 0u32;
        sim.run_with(&mut total, |total, sim, ev| {
            let Ev::Tick(n) = ev;
            *total += n;
            if n > 1 {
                sim.schedule_in(SimDuration::from_secs(1), Ev::Tick(n - 1));
            }
        });
        assert_eq!(total, 3 + 2 + 1);
    }
}
