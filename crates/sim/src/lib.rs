#![warn(missing_docs)]

//! Deterministic discrete-event simulation substrate.
//!
//! The paper's experiments run in *test mode*: tasks are not actually
//! executed, the predicted execution times are assumed accurate, and the
//! interesting behaviour is entirely in the scheduling and agent layers.
//! This crate provides the virtual-time machinery those layers run on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time with
//!   total ordering (no floating-point comparison hazards in the event
//!   queue).
//! * [`EventQueue`] — a priority queue with stable FIFO tie-breaking for
//!   events scheduled at the same instant.
//! * [`Simulation`] — the clock + queue bundle with a pull-style stepping
//!   API, so a driver can own both the simulation and its world without
//!   fighting the borrow checker.
//! * [`RngStream`] — named, independently seeded deterministic random
//!   streams, so the workload generator and the GA never perturb each other.
//! * [`Trace`] — a lightweight event trace recorder used by the experiment
//!   harness and the tests.

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::Simulation;
pub use queue::EventQueue;
pub use rng::RngStream;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
