//! The event queue: pending events keyed on `(time, sequence)`.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO tie-breaking). This is what makes whole-grid runs
//! reproducible: the request arrivals, the 10-second advertisement ticks
//! and the task completions interleave identically on every run.
//!
//! Two interchangeable backends sit behind the same API and deliver any
//! schedule in exactly the same order (property-tested against each
//! other in `tests/proptests.rs`):
//!
//! * [`EventQueue::heap`] — the classic binary min-heap. `O(log n)` per
//!   operation, the reference implementation.
//! * [`EventQueue::wheel`] (the default) — a hierarchical timing wheel:
//!   seven levels of 64 slots, each level covering 64× the span of the
//!   one below, with a one-word occupancy bitmap per level so advancing
//!   the clock skips empty regions with bit scans instead of walking
//!   ticks. Push is `O(1)`; pop cascades an entry through at most six
//!   levels over its lifetime. Events beyond the wheel's ~51-day span
//!   (and events pushed behind the current instant, which the engine
//!   never does but the API tolerates) fall back to a small binary heap.
//!
//! Determinism argument for the wheel: delivery order is decided solely
//! by sorting the drained tick's entries on their insertion sequence
//! number — never by slot layout. A cascade can append an *older* entry
//! (lower sequence number) to a slot after a directly-pushed newer one,
//! so slot order alone would be wrong; the sort makes the wheel's output
//! a pure function of the `(time, seq)` pairs, exactly like the heap.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A future-event list with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
}

enum Backend<E> {
    Heap(HeapQueue<E>),
    Wheel(Box<WheelQueue<E>>),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue on the default (timing-wheel) backend.
    pub fn new() -> Self {
        Self::wheel()
    }

    /// An empty queue backed by the hierarchical timing wheel.
    pub fn wheel() -> Self {
        EventQueue {
            backend: Backend::Wheel(Box::new(WheelQueue::new())),
            next_seq: 0,
        }
    }

    /// An empty queue backed by the reference binary heap.
    pub fn heap() -> Self {
        EventQueue {
            backend: Backend::Heap(HeapQueue::new()),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(h) => h.push(at, seq, event),
            Backend::Wheel(w) => w.push(at, seq, event),
        }
    }

    /// Re-insert an entry under its *original* sequence number without
    /// advancing the sequence counter. This is the replay half of
    /// [`EventQueue::pop_entry`]: a driver that speculatively pops
    /// entries (the sharded batch collector) puts them back with the
    /// exact `(at, seq)` key they were issued, so subsequent delivery
    /// order — including FIFO ties against events that were never
    /// popped — is indistinguishable from never having popped them.
    ///
    /// `seq` must come from a prior `pop_entry` (it is below the
    /// sequence counter and unique among pending entries).
    pub fn push_at_seq(&mut self, at: SimTime, seq: u64, event: E) {
        debug_assert!(seq < self.next_seq, "push_at_seq requires a recycled seq");
        match &mut self.backend {
            Backend::Heap(h) => h.push(at, seq, event),
            Backend::Wheel(w) => {
                // A restored entry may sort before entries already staged
                // for delivery; flush the staging buffer back into the
                // wheel so the next pop re-sorts the full instant.
                w.unstage();
                w.push(at, seq, event);
            }
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(at, _, e)| (at, e))
    }

    /// Like [`EventQueue::pop`], but also returns the entry's sequence
    /// number so it can be restored verbatim via
    /// [`EventQueue::push_at_seq`].
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop(),
            Backend::Wheel(w) => w.pop(),
        }
    }

    /// The timestamp of the earliest pending event.
    ///
    /// Takes `&mut self` because the wheel backend may cascade entries
    /// down a level to locate its minimum; the queue's contents and
    /// delivery order are unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(h) => h.peek_time(),
            Backend::Wheel(w) => w.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.heap.len(),
            Backend::Wheel(w) => w.len,
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.heap.clear(),
            Backend::Wheel(w) => w.clear(),
        }
    }

    /// Return the queue to its freshly-constructed state — clock origin
    /// and sequence counter back to zero — while keeping every slot,
    /// heap and staging allocation. A reset queue behaves exactly like a
    /// new one, so long-running drivers (the serve loop, fuzz corpora)
    /// can recycle one queue across sessions instead of re-growing the
    /// wheel each time.
    pub fn reset(&mut self) {
        self.clear();
        self.next_seq = 0;
        if let Backend::Wheel(w) = &mut self.backend {
            w.current = 0;
        }
    }

    /// Pre-size backing storage for about `additional` pending events
    /// (e.g. the bootstrap arrivals of a run, all pushed before the
    /// first pop). The wheel proper is allocation-cheap; this sizes the
    /// overflow heap and staging buffer that absorb bursts.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.backend {
            Backend::Heap(h) => h.heap.reserve(additional),
            Backend::Wheel(w) => {
                w.overflow.reserve(additional);
                w.ready.reserve(additional.min(1024));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reference backend: binary min-heap on (time, seq).
// ---------------------------------------------------------------------------

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event on top,
        // and among equal times the lowest sequence number.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E> HeapQueue<E> {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        self.heap.push(Entry { at, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

// ---------------------------------------------------------------------------
// Timing-wheel backend.
// ---------------------------------------------------------------------------

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level; one occupancy bit each fits a `u64` bitmap.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel depth. Seven levels span `64^7` ticks (microseconds) ≈ 51 days
/// of simulated time; anything further out uses the overflow heap.
const LEVELS: usize = 7;

/// A hierarchical timing wheel.
///
/// `current` is the tick of the most recently delivered event (0
/// initially); every entry stored in the wheel proper has `tick >=
/// current` and shares all 6-bit groups above its level with `current`
/// (aligned windows). An entry's level is the highest 6-bit group in
/// which its tick differs from `current` at insertion time; as `current`
/// advances into an occupied higher-level slot, that slot's entries
/// cascade to lower levels.
struct WheelQueue<E> {
    /// `slots[level][slot]`: unordered entries; sorted by seq at drain.
    slots: Vec<Vec<WheelEntry<E>>>,
    /// One occupancy bit per slot, one word per level.
    occupied: [u64; LEVELS],
    /// Far-future (beyond the wheel span) and past-time entries.
    overflow: BinaryHeap<Entry<E>>,
    /// Entries of the tick currently being delivered, seq-sorted,
    /// drained back to front.
    ready: Vec<WheelEntry<E>>,
    /// Tick of the last delivered (or currently draining) instant.
    current: u64,
    /// Total pending entries across slots, overflow and ready.
    len: usize,
}

struct WheelEntry<E> {
    tick: u64,
    seq: u64,
    event: E,
}

impl<E> WheelQueue<E> {
    fn new() -> Self {
        WheelQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: Vec::new(),
            current: 0,
            len: 0,
        }
    }

    /// The level whose aligned window holds `tick`, or `None` when the
    /// tick is outside the wheel (past, or beyond the top level's span).
    #[inline]
    fn level_for(&self, tick: u64) -> Option<usize> {
        if tick < self.current {
            return None;
        }
        let diff = tick ^ self.current;
        if diff == 0 {
            return Some(0);
        }
        let level = (63 - diff.leading_zeros()) / LEVEL_BITS;
        if (level as usize) < LEVELS {
            Some(level as usize)
        } else {
            None
        }
    }

    #[inline]
    fn slot_index(level: usize, tick: u64) -> usize {
        ((tick >> (LEVEL_BITS * level as u32)) as usize) & (SLOTS - 1)
    }

    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        self.len += 1;
        let tick = at.ticks();
        match self.level_for(tick) {
            Some(level) => self.insert(level, WheelEntry { tick, seq, event }),
            None => self.overflow.push(Entry { at, seq, event }),
        }
    }

    #[inline]
    fn insert(&mut self, level: usize, entry: WheelEntry<E>) {
        let slot = Self::slot_index(level, entry.tick);
        self.slots[level * SLOTS + slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.ready.is_empty() && !self.stage_next_tick() {
            return None;
        }
        if self.overflow_undercuts_ready() {
            let e = self.overflow.pop().expect("peeked entry");
            self.len -= 1;
            return Some((e.at, e.seq, e.event));
        }
        let e = self.ready.pop().expect("staged tick cannot be empty");
        self.len -= 1;
        Some((SimTime::from_ticks(e.tick), e.seq, e.event))
    }

    /// Move any staged-but-undelivered entries back into the wheel so a
    /// subsequent [`WheelQueue::push`] of an *older* sequence number at
    /// the staged instant is re-sorted ahead of them on the next pop.
    /// Staged entries normally have `tick == current` and re-insert at
    /// level 0; past-time entries (staged from the overflow heap) go
    /// back to overflow. Either way the next
    /// [`WheelQueue::stage_next_tick`] rebuilds the seq-sorted instant
    /// from scratch.
    fn unstage(&mut self) {
        while let Some(e) = self.ready.pop() {
            match self.level_for(e.tick) {
                Some(level) => self.insert(level, e),
                None => self.overflow.push(Entry {
                    at: SimTime::from_ticks(e.tick),
                    seq: e.seq,
                    event: e.event,
                }),
            }
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() && !self.stage_next_tick() {
            return None;
        }
        if self.overflow_undercuts_ready() {
            return self.overflow.peek().map(|e| e.at);
        }
        Some(SimTime::from_ticks(
            self.ready.last().expect("staged tick cannot be empty").tick,
        ))
    }

    /// After a tick is staged into `ready`, a push *behind* it can still
    /// arrive (the API tolerates past-time pushes); such entries always
    /// land in the overflow heap because their tick precedes `current`.
    /// They must be delivered before the staged instant. Equal-tick
    /// overflow entries were pushed later (higher seq) and wait for the
    /// next staging round, which keeps FIFO exact.
    #[inline]
    fn overflow_undercuts_ready(&self) -> bool {
        match (self.overflow.peek(), self.ready.last()) {
            (Some(top), Some(front)) => top.at.ticks() < front.tick,
            _ => false,
        }
    }

    /// Locate the earliest pending tick, move every entry scheduled for
    /// it into `ready` (sorted by descending seq, so `Vec::pop` delivers
    /// FIFO), and advance `current` to it. Returns false when empty.
    fn stage_next_tick(&mut self) -> bool {
        debug_assert!(self.ready.is_empty());
        let wheel_min = self.find_wheel_min();
        let overflow_min = self.overflow.peek().map(|e| e.at.ticks());
        let tick = match (wheel_min, overflow_min) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => return false,
        };

        if wheel_min == Some(tick) {
            // By now the minimum has been cascaded down to level 0 (see
            // `find_wheel_min`), whose slots each hold exactly one tick.
            let slot = Self::slot_index(0, tick);
            let bucket = &mut self.slots[slot];
            debug_assert!(bucket.iter().all(|e| e.tick == tick));
            self.ready.append(bucket);
            if bucket.capacity() > 1024 {
                // Don't let one bursty instant pin memory forever.
                *bucket = Vec::new();
            }
            self.occupied[0] &= !(1 << slot);
        }
        while let Some(top) = self.overflow.peek() {
            if top.at.ticks() != tick {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry");
            self.ready.push(WheelEntry {
                tick,
                seq: e.seq,
                event: e.event,
            });
        }
        // Descending seq: `Vec::pop` then yields lowest seq first. The
        // sort is what guarantees heap-identical FIFO order — cascades
        // and overflow merges append entries out of seq order.
        self.ready
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
        // Past-time overflow entries may precede `current`; never move
        // the clock backwards for them.
        self.current = self.current.max(tick);
        true
    }

    /// The earliest tick stored in the wheel proper, cascading entries
    /// toward level 0 until the minimum sits in a level-0 slot.
    fn find_wheel_min(&mut self) -> Option<u64> {
        loop {
            // Any level-0 entry beats every higher-level entry: it
            // shares all upper 6-bit groups with `current`, while a
            // level-k entry exceeds `current` in group k.
            if self.occupied[0] != 0 {
                let slot = self.occupied[0].trailing_zeros() as usize;
                let e = self.slots[slot].first().expect("occupancy bit set");
                return Some(e.tick);
            }
            let level = (1..LEVELS).find(|&l| self.occupied[l] != 0)?;
            // The lowest occupied slot of the lowest occupied level
            // contains the wheel minimum (slots order ticks by their
            // group-`level` value; all lower groups of `current` are
            // dominated because every stored tick is > `current` here).
            let slot = self.occupied[level].trailing_zeros() as usize;
            let bucket = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            self.occupied[level] &= !(1 << slot);
            // Advance the window origin to the slot's minimum tick so
            // every entry re-inserts at a strictly lower level. This is
            // safe: the slot minimum is the global wheel minimum, and
            // `pop` never delivers anything earlier than it.
            let min_tick = bucket
                .iter()
                .map(|e| e.tick)
                .min()
                .expect("occupancy bit set on empty slot");
            debug_assert!(min_tick >= self.current);
            self.current = min_tick;
            for entry in bucket {
                let lower = self
                    .level_for(entry.tick)
                    .expect("cascade stays inside the wheel span");
                debug_assert!(lower < level);
                self.insert(lower, entry);
            }
        }
    }

    fn clear(&mut self) {
        for bucket in &mut self.slots {
            bucket.clear();
        }
        self.occupied = [0; LEVELS];
        self.overflow.clear();
        self.ready.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a closure against both backends, so every test pins both.
    fn both(f: impl Fn(EventQueue<i64>)) {
        f(EventQueue::heap());
        f(EventQueue::wheel());
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.push(SimTime::from_secs(5), 3);
            q.push(SimTime::from_secs(1), 1);
            q.push(SimTime::from_secs(3), 2);
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, [1, 2, 3]);
        });
    }

    #[test]
    fn ties_break_fifo() {
        both(|mut q| {
            let t = SimTime::from_secs(7);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        both(|mut q| {
            q.push(SimTime::from_secs(10), 10);
            q.push(SimTime::from_secs(2), 2);
            assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
            q.push(SimTime::from_secs(4), 4);
            assert_eq!(q.pop(), Some((SimTime::from_secs(4), 4)));
            assert_eq!(q.pop(), Some((SimTime::from_secs(10), 10)));
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn peek_does_not_consume() {
        both(|mut q| {
            q.push(SimTime::from_secs(1), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        });
    }

    #[test]
    fn clear_empties_queue() {
        both(|mut q| {
            q.push(SimTime::ZERO, 1);
            q.push(SimTime::ZERO, 2);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn same_tick_push_after_pop_stays_fifo() {
        // An event pushed *at* the instant currently being delivered
        // must run after the instant's remaining events (it has a
        // higher seq), exactly as the heap orders it.
        both(|mut q| {
            let t = SimTime::from_secs(1);
            q.push(t, 1);
            q.push(t, 2);
            assert_eq!(q.pop(), Some((t, 1)));
            q.push(t, 3);
            assert_eq!(q.pop(), Some((t, 2)));
            assert_eq!(q.pop(), Some((t, 3)));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn far_future_events_use_the_overflow_path() {
        both(|mut q| {
            // Beyond the 64^7-tick wheel span, and the absolute maximum.
            let far = SimTime::from_ticks(1 << 62);
            q.push(SimTime::MAX, 3);
            q.push(far, 2);
            q.push(SimTime::from_secs(1), 1);
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
            assert_eq!(q.pop(), Some((far, 2)));
            assert_eq!(q.pop(), Some((SimTime::MAX, 3)));
        });
    }

    #[test]
    fn past_pushes_are_tolerated() {
        // The engine clamps to `now`, but the queue itself must stay
        // well-defined (and heap-identical) if handed an earlier time.
        both(|mut q| {
            q.push(SimTime::from_secs(10), 1);
            assert_eq!(q.pop(), Some((SimTime::from_secs(10), 1)));
            q.push(SimTime::from_secs(3), 2);
            q.push(SimTime::from_secs(12), 3);
            assert_eq!(q.pop(), Some((SimTime::from_secs(3), 2)));
            assert_eq!(q.pop(), Some((SimTime::from_secs(12), 3)));
        });
    }

    #[test]
    fn cascade_preserves_seq_order_within_a_tick() {
        // Craft a slot where a cascaded entry (older seq) joins a
        // directly-pushed newer entry at the same tick: delivery must
        // still be seq-ordered.
        let mut q = EventQueue::wheel();
        let t = SimTime::from_ticks(100_000);
        q.push(t, 1); // far from current=0: lives at a high level
        q.push(SimTime::from_ticks(99_999), 0);
        assert_eq!(q.pop(), Some((SimTime::from_ticks(99_999), 0)));
        // Now current=99_999; a fresh push to tick 100_000 lands at
        // level 0 *before* the cascaded seq-1 entry arrives there.
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn pop_entry_then_restore_is_invisible() {
        // Popping entries and pushing them back under their original
        // seqs must leave delivery order exactly as if nothing happened,
        // including FIFO ties against never-popped entries.
        both(|mut q| {
            let t = SimTime::from_secs(1);
            q.push(t, 10); // seq 0
            q.push(t, 11); // seq 1
            q.push(SimTime::from_secs(2), 12); // seq 2
            let (at, seq, e) = q.pop_entry().unwrap();
            assert_eq!((at, seq, e), (t, 0, 10));
            // A fresh push interleaves while the entry is out.
            q.push(t, 13); // seq 3
            q.push_at_seq(at, seq, e);
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, [10, 11, 13, 12]);
        });
    }

    #[test]
    fn restore_resorts_a_partially_drained_instant() {
        // The wheel stages a whole instant at the first pop; restoring a
        // lower-seq entry at that instant must still deliver it before
        // the staged higher-seq remainder.
        both(|mut q| {
            let t = SimTime::from_secs(5);
            q.push(t, 20); // seq 0
            q.push(t, 21); // seq 1
            q.push(t, 22); // seq 2
            let (at, seq, e) = q.pop_entry().unwrap();
            assert_eq!(e, 20);
            let (at1, seq1, e1) = q.pop_entry().unwrap();
            assert_eq!(e1, 21);
            q.push_at_seq(at, seq, e);
            q.push_at_seq(at1, seq1, e1);
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, [20, 21, 22]);
        });
    }

    #[test]
    fn reset_behaves_like_new() {
        both(|mut q| {
            q.push(SimTime::from_secs(3), 1);
            q.push(SimTime::from_secs(9), 2);
            q.pop();
            q.reset();
            assert!(q.is_empty());
            // Seqs restart at zero: FIFO ties behave like a fresh queue.
            q.push(SimTime::from_secs(1), 7);
            q.push(SimTime::from_secs(1), 8);
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 7)));
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 8)));
        });
    }

    #[test]
    fn reserve_is_behaviour_neutral() {
        both(|mut q| {
            q.reserve(1000);
            q.push(SimTime::from_secs(1), 1);
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        });
    }

    #[test]
    fn dense_microsecond_schedule_matches_heap() {
        let mut heap = EventQueue::heap();
        let mut wheel = EventQueue::wheel();
        // A deterministic scatter of ticks across several wheel levels.
        let mut tick: u64 = 0;
        for i in 0..5_000i64 {
            tick = tick
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = SimTime::from_ticks(tick % 50_000_000);
            heap.push(at, i);
            wheel.push(at, i);
        }
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
