//! The event queue: a min-heap keyed on `(time, sequence)`.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO tie-breaking). This is what makes whole-grid runs
//! reproducible: the 600 request arrivals, the 10-second advertisement
//! ticks and the task completions interleave identically on every run.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event on top,
        // and among equal times the lowest sequence number.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
        q.push(SimTime::from_secs(4), 4);
        assert_eq!(q.pop(), Some((SimTime::from_secs(4), 4)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 10)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
