//! Named deterministic random streams.
//!
//! The paper fixes the workload seed so all three experiments schedule an
//! identical request sequence. We go further: every stochastic component
//! (workload generation, GA selection/crossover/mutation per resource)
//! draws from its own stream derived from `(master_seed, label)`, so adding
//! randomness in one component never shifts the draws seen by another.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream, cheap to fork by label.
#[derive(Clone)]
pub struct RngStream {
    rng: ChaCha8Rng,
    seed: u64,
}

impl RngStream {
    /// Root stream for a master seed.
    pub fn root(seed: u64) -> Self {
        RngStream {
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derive an independent child stream named by `label`. Children with
    /// different labels (or different parents) are statistically
    /// independent; the same `(seed, label)` always yields the same stream.
    pub fn derive(&self, label: &str) -> RngStream {
        let child_seed = mix(self.seed, label);
        RngStream {
            rng: ChaCha8Rng::seed_from_u64(child_seed),
            seed: child_seed,
        }
    }

    /// The seed this stream was created from (after mixing).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// FNV-1a style mixing of a label into a seed. Stable across platforms.
fn mix(seed: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Final avalanche (splitmix64 finaliser).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::root(42);
        let mut b = RngStream::root(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngStream::root(1);
        let mut b = RngStream::root(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn derived_streams_are_independent_of_parent_consumption() {
        let root = RngStream::root(7);
        let mut child_before = root.derive("workload");
        let mut consumed = root.clone();
        for _ in 0..100 {
            consumed.next_u64();
        }
        let mut child_after = consumed.derive("workload");
        // Deriving depends only on (seed, label), not on parent draws.
        for _ in 0..16 {
            assert_eq!(child_before.next_u64(), child_after.next_u64());
        }
    }

    #[test]
    fn labels_separate_streams() {
        let root = RngStream::root(7);
        let mut a = root.derive("ga/S1");
        let mut b = root.derive("ga/S2");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn usable_with_rand_traits() {
        let mut s = RngStream::root(3).derive("x");
        let v: f64 = s.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
        let n: usize = s.gen_range(0..10);
        assert!(n < 10);
    }
}
