//! Virtual time.
//!
//! Time is stored as an integer number of microseconds so that event-queue
//! ordering is exact and runs are bit-for-bit reproducible. One microsecond
//! of resolution is far below anything the paper measures (PACE predictions
//! are reported in whole seconds; advertisement periods are 10 s).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per second, the internal tick rate.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An instant in virtual time, measured from the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// saturate to zero; this keeps prediction arithmetic total.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_f64_to_ticks(secs))
    }

    /// Construct from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The raw microsecond tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed distance to `other` in seconds (`self - other`); positive when
    /// `self` is later. Used by the ε metric where deadlines may be missed.
    #[inline]
    pub fn signed_secs_since(self, other: SimTime) -> f64 {
        if self.0 >= other.0 {
            (self.0 - other.0) as f64 / TICKS_PER_SEC as f64
        } else {
            -((other.0 - self.0) as f64 / TICKS_PER_SEC as f64)
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SEC)
    }

    /// Construct from fractional seconds, saturating at zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_f64_to_ticks(secs))
    }

    /// Construct from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// The raw microsecond tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True if the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

fn secs_f64_to_ticks(secs: f64) -> u64 {
    if secs.is_nan() || secs <= 0.0 {
        return 0;
    }
    if secs == f64::INFINITY {
        return u64::MAX;
    }
    let ticks = secs * TICKS_PER_SEC as f64;
    if ticks >= u64::MAX as f64 {
        u64::MAX
    } else {
        ticks.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is possible.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_roundtrip() {
        let t = SimTime::from_secs(42);
        assert_eq!(t.ticks(), 42 * TICKS_PER_SEC);
        assert!((t.as_secs_f64() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_construction_rounds() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.ticks(), TICKS_PER_SEC / 4);
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn huge_duration_saturates() {
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).ticks(), u64::MAX);
        let t = SimTime::MAX + SimDuration::from_secs(10);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn signed_distance() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert!((a.signed_secs_since(b) - 6.0).abs() < 1e-9);
        assert!((b.signed_secs_since(a) + 6.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(6));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let mut v = [
            SimTime::from_secs_f64(1.000001),
            SimTime::from_secs(1),
            SimTime::ZERO,
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[1], SimTime::from_secs(1));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            t += SimDuration::from_secs(2);
        }
        assert_eq!(t, SimTime::from_secs(10));
    }
}
