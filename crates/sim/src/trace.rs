//! A lightweight simulation trace.
//!
//! The experiment harness records scheduling decisions (request arrivals,
//! discovery hops, task dispatch, task start/completion) so that tests can
//! assert on *behaviour* — e.g. "in experiment 3 tasks migrated away from
//! the SPARCstations" — rather than only on aggregate metrics.

use crate::time::SimTime;

/// Category of a trace record. Kept as a small closed enum so filters are
/// cheap and typo-proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A user request arrived at an agent.
    RequestArrival,
    /// A discovery step evaluated/forwarded a request.
    Discovery,
    /// A task entered a local scheduler's queue.
    Enqueue,
    /// A task started executing.
    TaskStart,
    /// A task finished executing.
    TaskComplete,
    /// A service-information advertisement was exchanged.
    Advertisement,
    /// Anything else (free-form diagnostics).
    Info,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Virtual time of the record.
    pub at: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// The grid component that produced the record (agent or resource name).
    pub who: String,
    /// Free-form detail.
    pub detail: String,
}

/// An append-only trace buffer. Disabled traces cost one branch per record.
#[derive(Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace (records are dropped).
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// An enabled trace.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Whether records are currently retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    ///
    /// The `detail` argument is evaluated by the caller even when the
    /// trace is disabled; hot paths that would `format!` should use
    /// [`Trace::record_with`] instead.
    pub fn record(&mut self, at: SimTime, kind: TraceKind, who: &str, detail: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                kind,
                who: who.to_string(),
                detail: detail.into(),
            });
        }
    }

    /// Record an event, building `who`/`detail` lazily: the closure runs
    /// only when the trace is enabled, so a disabled trace costs one
    /// branch and zero allocations per call site.
    pub fn record_with<W, D>(&mut self, at: SimTime, kind: TraceKind, f: impl FnOnce() -> (W, D))
    where
        W: Into<String>,
        D: Into<String>,
    {
        if self.enabled {
            let (who, detail) = f();
            self.events.push(TraceEvent {
                at,
                kind,
                who: who.into(),
                detail: detail.into(),
            });
        }
    }

    /// All records so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Count records of one kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.of_kind(kind).count()
    }

    /// Drop all records.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_drops_records() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::Info, "x", "hello");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_retains_records_in_order() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_secs(1),
            TraceKind::RequestArrival,
            "S1",
            "req 0",
        );
        t.record(SimTime::from_secs(2), TraceKind::TaskStart, "S1", "task 0");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kind, TraceKind::RequestArrival);
        assert_eq!(t.events()[1].who, "S1");
    }

    #[test]
    fn kind_filter_and_count() {
        let mut t = Trace::enabled();
        for i in 0..5 {
            t.record(SimTime::from_secs(i), TraceKind::Discovery, "S2", "hop");
        }
        t.record(SimTime::from_secs(9), TraceKind::TaskComplete, "S2", "done");
        assert_eq!(t.count(TraceKind::Discovery), 5);
        assert_eq!(t.count(TraceKind::TaskComplete), 1);
        assert_eq!(t.count(TraceKind::Enqueue), 0);
    }

    #[test]
    fn record_with_is_lazy() {
        let mut t = Trace::disabled();
        let mut built = false;
        t.record_with(SimTime::ZERO, TraceKind::Info, || -> (&str, &str) {
            unreachable!("closure must not run on a disabled trace")
        });
        assert!(t.events().is_empty());
        let mut t = Trace::enabled();
        t.record_with(SimTime::ZERO, TraceKind::Info, || {
            built = true;
            ("S1", "detail")
        });
        assert!(built);
        assert_eq!(t.events()[0].who, "S1");
        assert_eq!(t.events()[0].detail, "detail");
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::enabled();
        t.record(SimTime::ZERO, TraceKind::Info, "x", "y");
        t.clear();
        assert!(t.events().is_empty());
    }
}
