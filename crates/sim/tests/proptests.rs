//! Property tests for the simulation substrate.

use agentgrid_sim::{EventQueue, RngStream, SimDuration, SimTime, Simulation};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    /// The event queue delivers in (time, insertion) order for any
    /// sequence of pushes.
    #[test]
    fn queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(*t), i);
        }
        // Reference: stable sort by time.
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..times.len()).collect();
        expected.sort_by_key(|(t, i)| (*t, *i));
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.ticks() / 1_000_000, i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Interleaved push/pop never delivers an event earlier than one
    /// already delivered.
    #[test]
    fn delivery_times_are_monotone_under_interleaving(
        ops in proptest::collection::vec((0u64..1000, proptest::bool::ANY), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut last = None::<SimTime>;
        let mut pending_max = SimTime::ZERO;
        for (t, push) in ops {
            if push {
                // Keep pushes in the future of everything delivered, as
                // the simulation contract requires.
                let at = SimTime::from_secs(t).max(last.unwrap_or(SimTime::ZERO));
                pending_max = pending_max.max(at);
                q.push(at, ());
            } else if let Some((at, ())) = q.pop() {
                if let Some(prev) = last {
                    prop_assert!(at >= prev, "time went backwards");
                }
                last = Some(at);
            }
        }
    }

    /// The timing wheel and the reference binary heap deliver ANY
    /// schedule in exactly the same order — times spanning every wheel
    /// level plus the far-future overflow path, with interleaved pops
    /// (including pops while empty and same-instant re-pushes).
    #[test]
    fn wheel_matches_heap_for_any_schedule(
        ops in proptest::collection::vec(
            prop_oneof![
                // Push: tick chosen to exercise level-0 slots, mid
                // levels, the top level and the overflow heap.
                (0u64..200u64).prop_map(Some),                    // dense low ticks
                (0u64..5_000_000_000u64).prop_map(Some),                 // all wheel levels
                (u64::MAX - 1000..u64::MAX).prop_map(Some),              // overflow region
                Just(None),                                              // pop
            ],
            1..300,
        )
    ) {
        let mut heap = EventQueue::heap();
        let mut wheel = EventQueue::wheel();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Some(t) => {
                    let at = SimTime::from_ticks(t);
                    heap.push(at, i);
                    wheel.push(at, i);
                }
                None => {
                    prop_assert_eq!(heap.peek_time(), wheel.peek_time());
                    prop_assert_eq!(heap.pop(), wheel.pop());
                }
            }
            prop_assert_eq!(heap.len(), wheel.len());
        }
        // Drain: every remaining event must come out identically.
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The simulation clock never goes backwards, whatever the schedule.
    #[test]
    fn clock_is_monotone(delays in proptest::collection::vec(0u64..100, 1..100)) {
        let mut sim: Simulation<u64> = Simulation::new();
        for (i, d) in delays.iter().enumerate() {
            sim.schedule(SimTime::from_secs(*d), i as u64);
        }
        let mut prev = SimTime::ZERO;
        while sim.step().is_some() {
            prop_assert!(sim.now() >= prev);
            prev = sim.now();
        }
        prop_assert_eq!(sim.processed(), delays.len() as u64);
    }

    /// Derived RNG streams are reproducible and label-separated.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let mut a = RngStream::root(seed).derive(&label);
        let mut b = RngStream::root(seed).derive(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        // A different label must diverge quickly.
        let mut c = RngStream::root(seed).derive(&format!("{label}!"));
        let mut d = RngStream::root(seed).derive(&label);
        let same = (0..32).filter(|_| c.next_u64() == d.next_u64()).count();
        prop_assert!(same < 4);
    }

    /// SimTime arithmetic: (t + d) - t == d for in-range values.
    #[test]
    fn time_arithmetic_roundtrips(t in 0u64..1_000_000, d in 0u64..1_000_000) {
        let base = SimTime::from_secs(t);
        let dur = SimDuration::from_secs(d);
        let later = base + dur;
        prop_assert_eq!(later.saturating_since(base), dur);
        prop_assert_eq!(later - base, dur);
        prop_assert!((later.signed_secs_since(base) - d as f64).abs() < 1e-6);
    }
}
