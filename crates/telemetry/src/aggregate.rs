//! The aggregating sink: counters per event kind plus log-linear
//! histograms for the latency-shaped quantities, rendered as the
//! `agentgrid report` summary.

use crate::event::{Event, Micros, TimedEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Sub-buckets per power-of-two octave. 16 gives ≤ 6.25% relative
/// quantisation error above the linear region.
const SUBBUCKETS: u64 = 16;
/// Octaves above the linear region; covers values up to 2^63.
const OCTAVES: usize = 60;
const BUCKETS: usize = SUBBUCKETS as usize * (OCTAVES + 1);

/// A fixed-memory histogram of `u64` samples with log-linear buckets:
/// exact below 16, sub-6.25%-error above, ~8 KiB flat.
#[derive(Clone)]
pub struct LogLinearHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // ≥ 4 here
    let octave = msb - 3; // 1-based: values 16..32 are octave 1
    let sub = ((v >> (msb - 4)) - SUBBUCKETS) as usize; // next 4 bits
    (octave * SUBBUCKETS as usize + sub).min(BUCKETS - 1)
}

fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUBBUCKETS as usize {
        return index as u64;
    }
    let octave = index / SUBBUCKETS as usize;
    let sub = (index % SUBBUCKETS as usize) as u64;
    (SUBBUCKETS + sub) << (octave - 1)
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> LogLinearHistogram {
        LogLinearHistogram::default()
    }

    /// Add one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, if any samples exist.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Number of samples in buckets whose lower bound is ≤ `bound` —
    /// i.e. a cumulative count at the histogram's own quantisation
    /// (exact below 16, within one sub-bucket ≤ 6.25% above). This is
    /// the shape a Prometheus cumulative `le` bucket wants: counts are
    /// monotone in `bound` and reach [`count`](Self::count) at the
    /// observed max.
    pub fn rank_le(&self, bound: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(i, _)| bucket_lower_bound(*i) <= bound)
            .map(|(_, c)| c)
            .sum()
    }

    /// The value at quantile `q` in `[0, 1]` (bucket lower bound, so a
    /// slight underestimate above the linear region; exact below it and
    /// for the recorded min/max). `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q = 0 → first sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the observed range so p0/p100 are exact.
                return Some(bucket_lower_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl std::fmt::Debug for LogLinearHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogLinearHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// Counters and histograms accumulated from an event stream.
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    /// Events seen, by [`Event::kind`].
    pub counters: BTreeMap<&'static str, u64>,
    /// Queue wait per started task, µs of simulated time.
    pub queue_wait_us: LogLinearHistogram,
    /// Hops consumed per discovery decision.
    pub discovery_hops: LogLinearHistogram,
    /// Host wall-clock µs per GA generation (from `GaEvolve` events).
    pub ga_generation_wall_us: LogLinearHistogram,
    /// Simulated µs of lateness per missed deadline.
    pub deadline_late_us: LogLinearHistogram,
    /// Evaluation-cache hits summed over `GaEvolve` events.
    pub cache_hits: u64,
    /// Evaluation-cache misses summed over `GaEvolve` events.
    pub cache_misses: u64,
}

impl Aggregate {
    /// An empty aggregate.
    pub fn new() -> Aggregate {
        Aggregate::default()
    }

    /// Fold one event in.
    pub fn observe(&mut self, event: &TimedEvent) {
        *self.counters.entry(event.event.kind()).or_insert(0) += 1;
        match &event.event {
            Event::TaskStart { queue_wait, .. } => self.queue_wait_us.record(*queue_wait),
            Event::Discovery { hops, .. } => self.discovery_hops.record(u64::from(*hops)),
            Event::TaskDeadlineMiss { late, .. } => self.deadline_late_us.record(*late),
            Event::GaEvolve {
                generations,
                wall_us,
                cache_hits,
                cache_misses,
                ..
            } => {
                if *generations > 0 {
                    self.ga_generation_wall_us
                        .record(wall_us / u64::from(*generations));
                }
                self.cache_hits += cache_hits;
                self.cache_misses += cache_misses;
            }
            _ => {}
        }
    }

    /// Aggregate a whole stream.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TimedEvent>) -> Aggregate {
        let mut agg = Aggregate::new();
        for event in events {
            agg.observe(event);
        }
        agg
    }

    /// Human-readable summary (the body of `agentgrid report`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("event counts\n");
        for (kind, count) in &self.counters {
            let _ = writeln!(out, "  {kind:<20} {count:>10}");
        }
        let total_cache = self.cache_hits + self.cache_misses;
        if total_cache > 0 {
            let _ = writeln!(
                out,
                "\nevaluation cache        {} hits / {} misses ({:.1}% hit ratio)",
                self.cache_hits,
                self.cache_misses,
                100.0 * self.cache_hits as f64 / total_cache as f64,
            );
        }
        out.push('\n');
        render_histogram(&mut out, "queue wait (sim µs)", &self.queue_wait_us);
        render_histogram(&mut out, "discovery hops", &self.discovery_hops);
        render_histogram(
            &mut out,
            "ga generation (wall µs)",
            &self.ga_generation_wall_us,
        );
        render_histogram(&mut out, "deadline lateness (µs)", &self.deadline_late_us);
        out
    }
}

fn render_histogram(out: &mut String, label: &str, h: &LogLinearHistogram) {
    let fmt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
    let _ = writeln!(
        out,
        "{label:<24} n={:<8} p50={:<10} p90={:<10} p99={:<10} max={}",
        h.count(),
        fmt(h.percentile(0.50)),
        fmt(h.percentile(0.90)),
        fmt(h.percentile(0.99)),
        fmt(h.max()),
    );
}

/// [`Aggregate`] behind a lock, usable as a live [`Recorder`] sink.
#[derive(Default)]
pub struct AggregateRecorder {
    inner: Mutex<Aggregate>,
}

impl AggregateRecorder {
    /// An empty aggregating sink.
    pub fn new() -> AggregateRecorder {
        AggregateRecorder::default()
    }

    /// Copy out the current totals.
    pub fn snapshot(&self) -> Aggregate {
        self.inner.lock().expect("aggregate lock").clone()
    }
}

impl crate::Recorder for AggregateRecorder {
    fn record(&self, t: Micros, event: Event) {
        self.inner
            .lock()
            .expect("aggregate lock")
            .observe(&TimedEvent { t, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LogLinearHistogram::new();
        h.record(1234);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(h.percentile(0.5).unwrap()), "q={q}");
        }
        assert_eq!(h.min(), Some(1234));
        assert_eq!(h.max(), Some(1234));
        // 1234 lands in an octave bucket whose lower bound is ≤ 1234 and
        // within 6.25%.
        let p = h.percentile(0.5).unwrap();
        assert!(p <= 1234 && (1234 - p) as f64 / 1234.0 < 0.0625);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogLinearHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(1.0), Some(15));
        assert_eq!(h.percentile(0.5), Some(7));
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = LogLinearHistogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40); // values up to ~16M
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!(p >= prev, "quantiles must not decrease");
            assert!(p >= h.min().unwrap() && p <= h.max().unwrap());
            prev = p;
        }
    }

    #[test]
    fn saturating_bucket_swallows_huge_values() {
        let mut h = LogLinearHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        // Both land in the top bucket; percentiles clamp to the observed
        // range rather than reporting the (tiny) bucket lower bound.
        assert_eq!(h.percentile(1.0), Some(u64::MAX));
        assert_eq!(h.percentile(0.1), Some(u64::MAX - 1));
    }

    #[test]
    fn relative_error_stays_under_one_sixteenth() {
        for v in [17u64, 100, 999, 12_345, 1 << 20, (1 << 40) + 12345] {
            let lb = bucket_lower_bound(bucket_index(v));
            assert!(lb <= v, "lower bound exceeds value for {v}");
            assert!(
                (v - lb) as f64 / v as f64 <= 1.0 / 16.0,
                "error too large for {v}: bound {lb}"
            );
        }
    }

    #[test]
    fn rank_le_is_monotone_and_exhaustive() {
        let mut h = LogLinearHistogram::new();
        for v in [0u64, 1, 5, 15, 100, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.sum(), 1_001_121);
        // Exact in the linear region.
        assert_eq!(h.rank_le(0), 1);
        assert_eq!(h.rank_le(4), 2);
        assert_eq!(h.rank_le(15), 4);
        // Monotone and exhaustive above it.
        let mut prev = 0;
        for bound in [10u64, 100, 1000, 10_000, 1_000_000, u64::MAX] {
            let r = h.rank_le(bound);
            assert!(r >= prev);
            prev = r;
        }
        assert_eq!(h.rank_le(u64::MAX), h.count());
    }

    #[test]
    fn aggregate_routes_fields_to_histograms() {
        let events = vec![
            TimedEvent {
                t: 0,
                event: Event::TaskStart {
                    task: 1,
                    resource: "S1".into(),
                    nodes: 2,
                    queue_wait: 500,
                },
            },
            TimedEvent {
                t: 1,
                event: Event::Discovery {
                    task: 1,
                    agent: "S1".into(),
                    decision: "local".into(),
                    hops: 3,
                },
            },
            TimedEvent {
                t: 2,
                event: Event::GaEvolve {
                    resource: "S1".into(),
                    generations: 10,
                    best_cost: 0.5,
                    converged: true,
                    wall_us: 1000,
                    cache_hits: 90,
                    cache_misses: 10,
                },
            },
        ];
        let agg = Aggregate::from_events(&events);
        assert_eq!(agg.counters["task_start"], 1);
        assert_eq!(agg.queue_wait_us.count(), 1);
        assert_eq!(agg.queue_wait_us.percentile(0.5), Some(500));
        assert_eq!(agg.discovery_hops.percentile(0.5), Some(3));
        assert_eq!(agg.ga_generation_wall_us.percentile(0.5), Some(100));
        assert_eq!(agg.cache_hits, 90);
        let report = agg.render();
        assert!(report.contains("task_start"));
        assert!(report.contains("queue wait"));
        assert!(report.contains("90.0% hit ratio"));
    }

    #[test]
    fn aggregate_recorder_is_a_live_sink() {
        use crate::Recorder;
        let rec = AggregateRecorder::new();
        rec.record(
            7,
            Event::EngineStep {
                processed: 1,
                pending: 0,
            },
        );
        assert_eq!(rec.snapshot().counters["engine_step"], 1);
    }
}
