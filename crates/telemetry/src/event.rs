//! The structured event vocabulary.
//!
//! Events carry their own primitive payloads (ids, names, microsecond
//! ticks) rather than simulation types, so this crate sits below every
//! other agentgrid crate and can be recorded from any layer. One tick
//! equals one microsecond of simulated time, matching `SimTime`.

use crate::json::{self, Value};

/// Microseconds of simulated time.
pub type Micros = u64;

/// One structured occurrence inside the system.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A task entered a resource's scheduler queue.
    TaskSubmit {
        /// Task id.
        task: u64,
        /// Resource whose queue accepted it.
        resource: String,
        /// Absolute deadline, in ticks.
        deadline: Micros,
    },
    /// Discovery moved a task from one agent to another for execution.
    TaskDispatch {
        /// Task id.
        task: u64,
        /// Agent that gave the task up.
        from: String,
        /// Agent that received it.
        to: String,
        /// Discovery hops consumed when the dispatch happened.
        hops: u32,
    },
    /// A task began executing on cluster nodes.
    TaskStart {
        /// Task id.
        task: u64,
        /// Executing resource.
        resource: String,
        /// Number of nodes allocated.
        nodes: u32,
        /// Ticks spent queued between submit and start.
        queue_wait: Micros,
    },
    /// A task finished executing.
    TaskFinish {
        /// Task id.
        task: u64,
        /// Executing resource.
        resource: String,
        /// Whether it completed by its deadline.
        deadline_met: bool,
    },
    /// A task completed after its deadline.
    TaskDeadlineMiss {
        /// Task id.
        task: u64,
        /// Executing resource.
        resource: String,
        /// Ticks past the deadline at completion.
        late: Micros,
    },
    /// Discovery gave up on a task (no capable resource found).
    TaskReject {
        /// Task id.
        task: u64,
        /// Agent at which the search ended.
        resource: String,
    },
    /// One GA generation finished on a resource's scheduler.
    GaGeneration {
        /// Resource running the GA.
        resource: String,
        /// Generation index within this evolve call (0-based).
        generation: u32,
        /// Best cost in the population after this generation.
        best_cost: f64,
        /// Mean cost over the population after this generation.
        mean_cost: f64,
    },
    /// One complete GA evolve call (a scheduling event's worth of search).
    GaEvolve {
        /// Resource running the GA.
        resource: String,
        /// Generations actually run (stall cut-off included).
        generations: u32,
        /// Final best cost.
        best_cost: f64,
        /// Whether the stall cut-off fired before the generation budget.
        converged: bool,
        /// Host wall-clock microseconds spent in the call.
        wall_us: u64,
        /// Evaluation-cache hits during the call.
        cache_hits: u64,
        /// Evaluation-cache misses during the call.
        cache_misses: u64,
    },
    /// Hot-path performance counters for one GA evolve call: how fast
    /// the fitness loop ran and which optimisations carried it. All
    /// payloads are observations — they never feed back into scheduling.
    GaHotPath {
        /// Resource running the GA.
        resource: String,
        /// Evaluation threads in force for the call.
        threads: u32,
        /// Population fitness evaluations performed.
        evaluations: u64,
        /// Evaluations per wall-clock second (host time).
        evals_per_sec: f64,
        /// Evaluations that recycled a warm decode scratch.
        scratch_reuses: u64,
        /// Cache hits served lock-free from the dense fast table.
        fast_hits: u64,
        /// Mean fraction of worker slots doing useful work, `[0, 1]`.
        pool_utilisation: f64,
        /// Island subpopulations evolved in parallel (1 = single
        /// population).
        islands: u32,
        /// Solution-string positions actually decoded by the delta
        /// evaluator; `evaluations × tasks` when delta is off, less when
        /// prefix resumes and memo copies kicked in.
        delta_positions: u64,
    },
    /// The evaluation cache missed and consulted the PACE engine.
    CacheEvaluate {
        /// Application model id.
        app: u32,
        /// Platform id.
        platform: u32,
        /// Processor count evaluated.
        nprocs: u32,
        /// Predicted execution time, seconds.
        predicted_s: f64,
    },
    /// Service information moved between agents (ACT maintenance).
    Advertise {
        /// Agent whose information moved.
        agent: String,
        /// Agent whose coordination table was updated.
        to: String,
        /// True for data-push, false for data-pull.
        push: bool,
    },
    /// An agent evaluated the discovery decision for a task.
    Discovery {
        /// Task id.
        task: u64,
        /// Deciding agent.
        agent: String,
        /// Outcome: `local`, `dispatch`, `escalate` or `reject`.
        decision: String,
        /// Hops consumed so far (this decision included).
        hops: u32,
    },
    /// A discovery request escalated to the parent agent.
    EscalationHop {
        /// Task id.
        task: u64,
        /// Child agent that escalated.
        from: String,
        /// Parent agent that received the request.
        to: String,
    },
    /// An execution backend launched a task (test-mode log or real
    /// threads).
    ExecutorLaunch {
        /// Task id.
        task: u64,
        /// Execution environment (`mpi`, `pvm`, `test`).
        env: String,
        /// Predicted duration, seconds.
        duration_s: f64,
    },
    /// A grid resource (and its agent) crashed: queued and running work
    /// is lost, the agent stops advertising and answering discovery.
    AgentDown {
        /// The crashed resource.
        resource: String,
    },
    /// A previously crashed resource restarted with empty queues and a
    /// cleared capability table.
    AgentUp {
        /// The restarted resource.
        resource: String,
    },
    /// An agent-to-agent message was lost (crashed endpoint, dropped
    /// link, or random advertisement loss).
    MsgDropped {
        /// Sending agent.
        from: String,
        /// Intended receiver.
        to: String,
        /// What was lost: `pull`, `advert`, `dispatch` or `request`.
        what: String,
    },
    /// A task lost in a crash was re-submitted from its origin agent.
    TaskRecovered {
        /// Task id.
        task: u64,
        /// Resource the recovered task was re-placed on.
        resource: String,
        /// Ticks between the loss and this re-placement.
        latency: Micros,
    },
    /// Dispatch retries for a task exhausted their budget; the failure
    /// policy decides its fate.
    RetryExhausted {
        /// Task id.
        task: u64,
        /// Origin agent where the retries ended.
        resource: String,
        /// Attempts made.
        attempts: u32,
    },
    /// A scheduler sampled its advertised freetime (eq. 7's φ) right
    /// after absorbing a submit. Emitted for invariant checking: the
    /// sample must never precede its own instant or the committed
    /// ledger makespan.
    FreetimeSample {
        /// Resource whose freetime was sampled.
        resource: String,
        /// Advertised freetime φ, ticks (absolute).
        freetime: Micros,
        /// Committed ledger makespan at the sample, ticks (absolute).
        committed: Micros,
    },
    /// Legitimacy verdict on the solution a GA evolve call committed
    /// to: the ordering must be a permutation and every task's node
    /// mask non-empty within the resource's processor count.
    GaSolutionCheck {
        /// Resource running the GA.
        resource: String,
        /// Tasks in the optimisation set.
        tasks: u32,
        /// Whether the committed solution passed the legitimacy check.
        legit: bool,
    },
    /// A planned elasticity directive was applied to a resource: a
    /// scale-down (graceful leave: queued work re-placed, running work
    /// allowed to finish) or a scale-up (rejoin with empty queues).
    /// Always followed by the matching `AgentDown`/`AgentUp` event.
    ScaleDirective {
        /// The resource leaving or joining.
        resource: String,
        /// `true` for scale-up (join), `false` for scale-down (leave).
        up: bool,
        /// Queued tasks displaced by a scale-down (0 for scale-up).
        drained: u32,
    },
    /// The online tuner adjusted a runtime parameter in response to
    /// observed load (the monitoring→analysis→tuning loop).
    TunerAdjust {
        /// Which knob moved: `ga_generations`, `pull_period_us` or
        /// `act_ttl_us` (0 meaning "no TTL").
        parameter: String,
        /// Value before the adjustment.
        from: u64,
        /// Value after the adjustment.
        to: u64,
        /// Why: `backlog-high` or `backlog-low`.
        trigger: String,
    },
    /// Periodic progress marker from the simulation engine.
    EngineStep {
        /// Events processed so far.
        processed: u64,
        /// Events still queued.
        pending: u64,
    },
    /// The simulation reached its horizon (end of run).
    EngineHorizon {
        /// Final simulated time, ticks.
        horizon: Micros,
    },
    /// One accepted ingestion line was appended to the serve-mode
    /// write-ahead log (before being applied to the grid). Emitted on
    /// the serve loop's dedicated infrastructure channel so the main
    /// stream stays bit-identical between a live run and its replay.
    WalAppend {
        /// Sequence number of the appended record (1-based, monotonic
        /// across process restarts).
        seq: u64,
        /// Drive-mode epoch: 0 for a fresh log, +1 per crash recovery.
        epoch: u64,
        /// Encoded record size on disk, bytes (newline included).
        bytes: u64,
    },
    /// A write-ahead log was replayed through the ordinary ingestion
    /// path at startup (crash recovery). One summary event per
    /// recovery, on the infrastructure channel.
    WalReplay {
        /// Complete records recovered and re-applied.
        records: u64,
        /// Highest sequence number recovered.
        last_seq: u64,
        /// Epoch the resumed log continues at.
        epoch: u64,
        /// Torn-tail bytes discarded past the last complete record.
        truncated_bytes: u64,
    },
    /// The bounded ingest admission queue refused lines (backpressure:
    /// the HTTP path answered `429 Too Many Requests`). Aggregated by
    /// the serve loop; emitted on the infrastructure channel.
    IngestRejected {
        /// Lines refused since the previous event.
        lines: u64,
        /// Queue depth observed when the rejection was noticed.
        queue_depth: u64,
    },
    /// One merge-barrier window of the sharded simulation: a batch of
    /// commuting events executed across shard workers and re-delivered
    /// in sequential order. Emitted on a dedicated sync channel so the
    /// main stream stays identical across shard counts.
    ShardSync {
        /// Barrier window index (0-based, monotonic per run).
        window: u64,
        /// Configured shard count.
        shards: u32,
        /// Events executed in this window.
        batched: u64,
        /// Events landing on the busiest shard of the window.
        busiest: u64,
    },
}

/// An [`Event`] plus the simulated instant it was recorded at.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// Simulated time, microseconds.
    pub t: Micros,
    /// What happened.
    pub event: Event,
}

impl Event {
    /// Stable snake_case tag identifying the variant; used as the JSON
    /// `type` field and as the counter key in aggregation.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TaskSubmit { .. } => "task_submit",
            Event::TaskDispatch { .. } => "task_dispatch",
            Event::TaskStart { .. } => "task_start",
            Event::TaskFinish { .. } => "task_finish",
            Event::TaskDeadlineMiss { .. } => "task_deadline_miss",
            Event::TaskReject { .. } => "task_reject",
            Event::GaGeneration { .. } => "ga_generation",
            Event::GaEvolve { .. } => "ga_evolve",
            Event::GaHotPath { .. } => "ga_hot_path",
            Event::CacheEvaluate { .. } => "cache_evaluate",
            Event::Advertise { .. } => "advertise",
            Event::Discovery { .. } => "discovery",
            Event::EscalationHop { .. } => "escalation_hop",
            Event::ExecutorLaunch { .. } => "executor_launch",
            Event::AgentDown { .. } => "agent_down",
            Event::AgentUp { .. } => "agent_up",
            Event::MsgDropped { .. } => "msg_dropped",
            Event::TaskRecovered { .. } => "task_recovered",
            Event::RetryExhausted { .. } => "retry_exhausted",
            Event::FreetimeSample { .. } => "freetime_sample",
            Event::GaSolutionCheck { .. } => "ga_solution_check",
            Event::ScaleDirective { .. } => "scale_directive",
            Event::TunerAdjust { .. } => "tuner_adjust",
            Event::EngineStep { .. } => "engine_step",
            Event::EngineHorizon { .. } => "engine_horizon",
            Event::ShardSync { .. } => "shard_sync",
            Event::WalAppend { .. } => "wal_append",
            Event::WalReplay { .. } => "wal_replay",
            Event::IngestRejected { .. } => "ingest_rejected",
        }
    }

    /// The track a visual trace viewer should file this event under:
    /// the resource/agent name where one applies, else a subsystem name.
    pub fn track(&self) -> &str {
        match self {
            Event::TaskSubmit { resource, .. }
            | Event::TaskStart { resource, .. }
            | Event::TaskFinish { resource, .. }
            | Event::TaskDeadlineMiss { resource, .. }
            | Event::TaskReject { resource, .. }
            | Event::GaGeneration { resource, .. }
            | Event::GaEvolve { resource, .. }
            | Event::GaHotPath { resource, .. }
            | Event::AgentDown { resource }
            | Event::AgentUp { resource }
            | Event::TaskRecovered { resource, .. }
            | Event::RetryExhausted { resource, .. }
            | Event::FreetimeSample { resource, .. }
            | Event::GaSolutionCheck { resource, .. }
            | Event::ScaleDirective { resource, .. } => resource,
            Event::TunerAdjust { .. } => "tuner",
            Event::MsgDropped { to, .. } => to,
            Event::TaskDispatch { to, .. } => to,
            Event::Advertise { to, .. } => to,
            Event::Discovery { agent, .. } => agent,
            Event::EscalationHop { to, .. } => to,
            Event::CacheEvaluate { .. } => "pace-cache",
            Event::ExecutorLaunch { .. } => "executor",
            Event::EngineStep { .. } | Event::EngineHorizon { .. } | Event::ShardSync { .. } => {
                "engine"
            }
            Event::WalAppend { .. } | Event::WalReplay { .. } => "wal",
            Event::IngestRejected { .. } => "ingest",
        }
    }
}

impl TimedEvent {
    /// JSON object form: `{"t": ..., "type": ..., <payload fields>}`.
    pub fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("t".to_string(), json::num(self.t as f64)),
            ("type".to_string(), json::s(self.event.kind())),
        ];
        let mut push = |k: &str, v: Value| fields.push((k.to_string(), v));
        match &self.event {
            Event::TaskSubmit {
                task,
                resource,
                deadline,
            } => {
                push("task", json::num(*task as f64));
                push("resource", json::s(resource.clone()));
                push("deadline", json::num(*deadline as f64));
            }
            Event::TaskDispatch {
                task,
                from,
                to,
                hops,
            } => {
                push("task", json::num(*task as f64));
                push("from", json::s(from.clone()));
                push("to", json::s(to.clone()));
                push("hops", json::num(f64::from(*hops)));
            }
            Event::TaskStart {
                task,
                resource,
                nodes,
                queue_wait,
            } => {
                push("task", json::num(*task as f64));
                push("resource", json::s(resource.clone()));
                push("nodes", json::num(f64::from(*nodes)));
                push("queue_wait", json::num(*queue_wait as f64));
            }
            Event::TaskFinish {
                task,
                resource,
                deadline_met,
            } => {
                push("task", json::num(*task as f64));
                push("resource", json::s(resource.clone()));
                push("deadline_met", Value::Bool(*deadline_met));
            }
            Event::TaskDeadlineMiss {
                task,
                resource,
                late,
            } => {
                push("task", json::num(*task as f64));
                push("resource", json::s(resource.clone()));
                push("late", json::num(*late as f64));
            }
            Event::TaskReject { task, resource } => {
                push("task", json::num(*task as f64));
                push("resource", json::s(resource.clone()));
            }
            Event::GaGeneration {
                resource,
                generation,
                best_cost,
                mean_cost,
            } => {
                push("resource", json::s(resource.clone()));
                push("generation", json::num(f64::from(*generation)));
                push("best_cost", json::num(*best_cost));
                push("mean_cost", json::num(*mean_cost));
            }
            Event::GaEvolve {
                resource,
                generations,
                best_cost,
                converged,
                wall_us,
                cache_hits,
                cache_misses,
            } => {
                push("resource", json::s(resource.clone()));
                push("generations", json::num(f64::from(*generations)));
                push("best_cost", json::num(*best_cost));
                push("converged", Value::Bool(*converged));
                push("wall_us", json::num(*wall_us as f64));
                push("cache_hits", json::num(*cache_hits as f64));
                push("cache_misses", json::num(*cache_misses as f64));
            }
            Event::GaHotPath {
                resource,
                threads,
                evaluations,
                evals_per_sec,
                scratch_reuses,
                fast_hits,
                pool_utilisation,
                islands,
                delta_positions,
            } => {
                push("resource", json::s(resource.clone()));
                push("threads", json::num(f64::from(*threads)));
                push("evaluations", json::num(*evaluations as f64));
                push("evals_per_sec", json::num(*evals_per_sec));
                push("scratch_reuses", json::num(*scratch_reuses as f64));
                push("fast_hits", json::num(*fast_hits as f64));
                push("pool_utilisation", json::num(*pool_utilisation));
                push("islands", json::num(f64::from(*islands)));
                push("delta_positions", json::num(*delta_positions as f64));
            }
            Event::CacheEvaluate {
                app,
                platform,
                nprocs,
                predicted_s,
            } => {
                push("app", json::num(f64::from(*app)));
                push("platform", json::num(f64::from(*platform)));
                push("nprocs", json::num(f64::from(*nprocs)));
                push("predicted_s", json::num(*predicted_s));
            }
            Event::Advertise { agent, to, push: p } => {
                push("agent", json::s(agent.clone()));
                push("to", json::s(to.clone()));
                push("push", Value::Bool(*p));
            }
            Event::Discovery {
                task,
                agent,
                decision,
                hops,
            } => {
                push("task", json::num(*task as f64));
                push("agent", json::s(agent.clone()));
                push("decision", json::s(decision.clone()));
                push("hops", json::num(f64::from(*hops)));
            }
            Event::EscalationHop { task, from, to } => {
                push("task", json::num(*task as f64));
                push("from", json::s(from.clone()));
                push("to", json::s(to.clone()));
            }
            Event::ExecutorLaunch {
                task,
                env,
                duration_s,
            } => {
                push("task", json::num(*task as f64));
                push("env", json::s(env.clone()));
                push("duration_s", json::num(*duration_s));
            }
            Event::AgentDown { resource } => {
                push("resource", json::s(resource.clone()));
            }
            Event::AgentUp { resource } => {
                push("resource", json::s(resource.clone()));
            }
            Event::MsgDropped { from, to, what } => {
                push("from", json::s(from.clone()));
                push("to", json::s(to.clone()));
                push("what", json::s(what.clone()));
            }
            Event::TaskRecovered {
                task,
                resource,
                latency,
            } => {
                push("task", json::num(*task as f64));
                push("resource", json::s(resource.clone()));
                push("latency", json::num(*latency as f64));
            }
            Event::RetryExhausted {
                task,
                resource,
                attempts,
            } => {
                push("task", json::num(*task as f64));
                push("resource", json::s(resource.clone()));
                push("attempts", json::num(f64::from(*attempts)));
            }
            Event::FreetimeSample {
                resource,
                freetime,
                committed,
            } => {
                push("resource", json::s(resource.clone()));
                push("freetime", json::num(*freetime as f64));
                push("committed", json::num(*committed as f64));
            }
            Event::GaSolutionCheck {
                resource,
                tasks,
                legit,
            } => {
                push("resource", json::s(resource.clone()));
                push("tasks", json::num(f64::from(*tasks)));
                push("legit", Value::Bool(*legit));
            }
            Event::ScaleDirective {
                resource,
                up,
                drained,
            } => {
                push("resource", json::s(resource.clone()));
                push("up", Value::Bool(*up));
                push("drained", json::num(f64::from(*drained)));
            }
            Event::TunerAdjust {
                parameter,
                from,
                to,
                trigger,
            } => {
                push("parameter", json::s(parameter.clone()));
                push("from", json::num(*from as f64));
                push("to", json::num(*to as f64));
                push("trigger", json::s(trigger.clone()));
            }
            Event::EngineStep { processed, pending } => {
                push("processed", json::num(*processed as f64));
                push("pending", json::num(*pending as f64));
            }
            Event::EngineHorizon { horizon } => {
                push("horizon", json::num(*horizon as f64));
            }
            Event::ShardSync {
                window,
                shards,
                batched,
                busiest,
            } => {
                push("window", json::num(*window as f64));
                push("shards", json::num(f64::from(*shards)));
                push("batched", json::num(*batched as f64));
                push("busiest", json::num(*busiest as f64));
            }
            Event::WalAppend { seq, epoch, bytes } => {
                push("seq", json::num(*seq as f64));
                push("epoch", json::num(*epoch as f64));
                push("bytes", json::num(*bytes as f64));
            }
            Event::WalReplay {
                records,
                last_seq,
                epoch,
                truncated_bytes,
            } => {
                push("records", json::num(*records as f64));
                push("last_seq", json::num(*last_seq as f64));
                push("epoch", json::num(*epoch as f64));
                push("truncated_bytes", json::num(*truncated_bytes as f64));
            }
            Event::IngestRejected { lines, queue_depth } => {
                push("lines", json::num(*lines as f64));
                push("queue_depth", json::num(*queue_depth as f64));
            }
        }
        Value::Obj(fields)
    }

    /// Inverse of [`to_json`](Self::to_json); `None` when the object is
    /// not a well-formed event.
    pub fn from_json(v: &Value) -> Option<TimedEvent> {
        let t = v.get("t")?.as_u64()?;
        let kind = v.get("type")?.as_str()?;
        let str_field = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
        let u64_field = |k: &str| v.get(k).and_then(Value::as_u64);
        let u32_field = |k: &str| u64_field(k).and_then(|n| u32::try_from(n).ok());
        let f64_field = |k: &str| v.get(k).and_then(Value::as_f64);
        let bool_field = |k: &str| v.get(k).and_then(Value::as_bool);
        let event = match kind {
            "task_submit" => Event::TaskSubmit {
                task: u64_field("task")?,
                resource: str_field("resource")?,
                deadline: u64_field("deadline")?,
            },
            "task_dispatch" => Event::TaskDispatch {
                task: u64_field("task")?,
                from: str_field("from")?,
                to: str_field("to")?,
                hops: u32_field("hops")?,
            },
            "task_start" => Event::TaskStart {
                task: u64_field("task")?,
                resource: str_field("resource")?,
                nodes: u32_field("nodes")?,
                queue_wait: u64_field("queue_wait")?,
            },
            "task_finish" => Event::TaskFinish {
                task: u64_field("task")?,
                resource: str_field("resource")?,
                deadline_met: bool_field("deadline_met")?,
            },
            "task_deadline_miss" => Event::TaskDeadlineMiss {
                task: u64_field("task")?,
                resource: str_field("resource")?,
                late: u64_field("late")?,
            },
            "task_reject" => Event::TaskReject {
                task: u64_field("task")?,
                resource: str_field("resource")?,
            },
            "ga_generation" => Event::GaGeneration {
                resource: str_field("resource")?,
                generation: u32_field("generation")?,
                best_cost: f64_field("best_cost")?,
                mean_cost: f64_field("mean_cost")?,
            },
            "ga_evolve" => Event::GaEvolve {
                resource: str_field("resource")?,
                generations: u32_field("generations")?,
                best_cost: f64_field("best_cost")?,
                converged: bool_field("converged")?,
                wall_us: u64_field("wall_us")?,
                cache_hits: u64_field("cache_hits")?,
                cache_misses: u64_field("cache_misses")?,
            },
            "ga_hot_path" => Event::GaHotPath {
                resource: str_field("resource")?,
                threads: u32_field("threads")?,
                evaluations: u64_field("evaluations")?,
                evals_per_sec: f64_field("evals_per_sec")?,
                scratch_reuses: u64_field("scratch_reuses")?,
                fast_hits: u64_field("fast_hits")?,
                pool_utilisation: f64_field("pool_utilisation")?,
                // Added after the field set above shipped; absent in
                // older traces, so default rather than reject.
                islands: u32_field("islands").unwrap_or(1),
                delta_positions: u64_field("delta_positions").unwrap_or(0),
            },
            "cache_evaluate" => Event::CacheEvaluate {
                app: u32_field("app")?,
                platform: u32_field("platform")?,
                nprocs: u32_field("nprocs")?,
                predicted_s: f64_field("predicted_s")?,
            },
            "advertise" => Event::Advertise {
                agent: str_field("agent")?,
                to: str_field("to")?,
                push: bool_field("push")?,
            },
            "discovery" => Event::Discovery {
                task: u64_field("task")?,
                agent: str_field("agent")?,
                decision: str_field("decision")?,
                hops: u32_field("hops")?,
            },
            "escalation_hop" => Event::EscalationHop {
                task: u64_field("task")?,
                from: str_field("from")?,
                to: str_field("to")?,
            },
            "executor_launch" => Event::ExecutorLaunch {
                task: u64_field("task")?,
                env: str_field("env")?,
                duration_s: f64_field("duration_s")?,
            },
            "agent_down" => Event::AgentDown {
                resource: str_field("resource")?,
            },
            "agent_up" => Event::AgentUp {
                resource: str_field("resource")?,
            },
            "msg_dropped" => Event::MsgDropped {
                from: str_field("from")?,
                to: str_field("to")?,
                what: str_field("what")?,
            },
            "task_recovered" => Event::TaskRecovered {
                task: u64_field("task")?,
                resource: str_field("resource")?,
                latency: u64_field("latency")?,
            },
            "retry_exhausted" => Event::RetryExhausted {
                task: u64_field("task")?,
                resource: str_field("resource")?,
                attempts: u32_field("attempts")?,
            },
            "freetime_sample" => Event::FreetimeSample {
                resource: str_field("resource")?,
                freetime: u64_field("freetime")?,
                committed: u64_field("committed")?,
            },
            "ga_solution_check" => Event::GaSolutionCheck {
                resource: str_field("resource")?,
                tasks: u32_field("tasks")?,
                legit: bool_field("legit")?,
            },
            "scale_directive" => Event::ScaleDirective {
                resource: str_field("resource")?,
                up: bool_field("up")?,
                drained: u32_field("drained")?,
            },
            "tuner_adjust" => Event::TunerAdjust {
                parameter: str_field("parameter")?,
                from: u64_field("from")?,
                to: u64_field("to")?,
                trigger: str_field("trigger")?,
            },
            "engine_step" => Event::EngineStep {
                processed: u64_field("processed")?,
                pending: u64_field("pending")?,
            },
            "engine_horizon" => Event::EngineHorizon {
                horizon: u64_field("horizon")?,
            },
            "shard_sync" => Event::ShardSync {
                window: u64_field("window")?,
                shards: u32_field("shards")?,
                batched: u64_field("batched")?,
                busiest: u64_field("busiest")?,
            },
            "wal_append" => Event::WalAppend {
                seq: u64_field("seq")?,
                epoch: u64_field("epoch")?,
                bytes: u64_field("bytes")?,
            },
            "wal_replay" => Event::WalReplay {
                records: u64_field("records")?,
                last_seq: u64_field("last_seq")?,
                epoch: u64_field("epoch")?,
                truncated_bytes: u64_field("truncated_bytes")?,
            },
            "ingest_rejected" => Event::IngestRejected {
                lines: u64_field("lines")?,
                queue_depth: u64_field("queue_depth")?,
            },
            _ => return None,
        };
        Some(TimedEvent { t, event })
    }
}

#[cfg(test)]
pub(crate) fn one_of_each_variant() -> Vec<TimedEvent> {
    let name = |s: &str| s.to_string();
    [
        Event::TaskSubmit {
            task: 1,
            resource: name("S1"),
            deadline: 5_000_000,
        },
        Event::TaskDispatch {
            task: 1,
            from: name("S1"),
            to: name("S2 \"quoted\"\n"),
            hops: 2,
        },
        Event::TaskStart {
            task: 1,
            resource: name("S2"),
            nodes: 4,
            queue_wait: 1_250_000,
        },
        Event::TaskFinish {
            task: 1,
            resource: name("S2"),
            deadline_met: true,
        },
        Event::TaskDeadlineMiss {
            task: 2,
            resource: name("S3"),
            late: 777,
        },
        Event::TaskReject {
            task: 3,
            resource: name("S4"),
        },
        Event::GaGeneration {
            resource: name("S1"),
            generation: 7,
            best_cost: 0.125,
            mean_cost: 0.5,
        },
        Event::GaEvolve {
            resource: name("S1"),
            generations: 40,
            best_cost: 0.1,
            converged: false,
            wall_us: 1234,
            cache_hits: 900,
            cache_misses: 100,
        },
        Event::GaHotPath {
            resource: name("S1"),
            threads: 4,
            evaluations: 1640,
            evals_per_sec: 250_000.0,
            scratch_reuses: 1630,
            fast_hits: 15_000,
            pool_utilisation: 0.875,
            islands: 4,
            delta_positions: 9_800,
        },
        Event::CacheEvaluate {
            app: 3,
            platform: 1,
            nprocs: 8,
            predicted_s: 12.75,
        },
        Event::Advertise {
            agent: name("S5"),
            to: name("S1"),
            push: false,
        },
        Event::Discovery {
            task: 9,
            agent: name("S1"),
            decision: name("escalate"),
            hops: 1,
        },
        Event::EscalationHop {
            task: 9,
            from: name("S1"),
            to: name("root"),
        },
        Event::ExecutorLaunch {
            task: 9,
            env: name("test"),
            duration_s: 42.5,
        },
        Event::AgentDown {
            resource: name("S3"),
        },
        Event::AgentUp {
            resource: name("S3"),
        },
        Event::MsgDropped {
            from: name("S3"),
            to: name("S1"),
            what: name("pull"),
        },
        Event::TaskRecovered {
            task: 11,
            resource: name("S2"),
            latency: 4_000_000,
        },
        Event::RetryExhausted {
            task: 12,
            resource: name("S4"),
            attempts: 16,
        },
        Event::FreetimeSample {
            resource: name("S2"),
            freetime: 9_500_000,
            committed: 9_000_000,
        },
        Event::GaSolutionCheck {
            resource: name("S1"),
            tasks: 12,
            legit: true,
        },
        Event::ScaleDirective {
            resource: name("S3"),
            up: false,
            drained: 5,
        },
        Event::TunerAdjust {
            parameter: name("ga_generations"),
            from: 40,
            to: 80,
            trigger: name("backlog-high"),
        },
        Event::EngineStep {
            processed: 1000,
            pending: 17,
        },
        Event::EngineHorizon {
            horizon: 86_400_000_000,
        },
        Event::ShardSync {
            window: 12,
            shards: 4,
            batched: 96,
            busiest: 31,
        },
        Event::WalAppend {
            seq: 42,
            epoch: 1,
            bytes: 137,
        },
        Event::WalReplay {
            records: 41,
            last_seq: 41,
            epoch: 2,
            truncated_bytes: 19,
        },
        Event::IngestRejected {
            lines: 8,
            queue_depth: 1024,
        },
    ]
    .into_iter()
    .enumerate()
    .map(|(i, event)| TimedEvent {
        t: i as u64 * 1000,
        event,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_roundtrips_through_json() {
        for te in one_of_each_variant() {
            let v = te.to_json();
            let back = TimedEvent::from_json(&v).expect("roundtrip parses");
            assert_eq!(back, te);
            // And through the textual form too.
            let reparsed = crate::json::Value::parse(&v.to_compact()).unwrap();
            assert_eq!(TimedEvent::from_json(&reparsed).unwrap(), te);
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds: std::collections::BTreeSet<&str> = one_of_each_variant()
            .iter()
            .map(|te| te.event.kind())
            .collect();
        assert_eq!(kinds.len(), one_of_each_variant().len());
    }

    #[test]
    fn from_json_rejects_wrong_shapes() {
        assert_eq!(TimedEvent::from_json(&crate::json::num(1.0)), None);
        let missing = crate::json::obj(vec![("t", crate::json::num(0.0))]);
        assert_eq!(TimedEvent::from_json(&missing), None);
        let unknown = crate::json::obj(vec![
            ("t", crate::json::num(0.0)),
            ("type", crate::json::s("no_such_event")),
        ]);
        assert_eq!(TimedEvent::from_json(&unknown), None);
    }
}
