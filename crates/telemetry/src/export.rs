//! Trace export and import.
//!
//! Two on-disk formats:
//!
//! - **JSONL** — one [`TimedEvent`] object per line; trivially
//!   greppable and streamable.
//! - **Chrome `trace_event`** — a JSON array of instant events loadable
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!   Simulated microseconds map directly onto the format's `ts` field,
//!   events are filed onto one named track per resource/agent, and each
//!   trace event carries the original JSONL object under `args`, so a
//!   Chrome trace is self-sufficient for [`read_trace`].

use crate::event::{Event, Micros, TimedEvent};
use crate::json::{self, Value};
use std::io::{self, Write};
use std::sync::Mutex;

/// Streaming JSONL sink over any writer.
pub struct JsonlRecorder<W: Write + Send> {
    out: Mutex<JsonlState<W>>,
}

struct JsonlState<W> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Write one line per event into `writer`.
    pub fn new(writer: W) -> JsonlRecorder<W> {
        JsonlRecorder {
            out: Mutex::new(JsonlState {
                writer,
                error: None,
            }),
        }
    }

    /// The first IO error hit while writing, if any (recording itself
    /// never fails; errors are remembered here).
    pub fn take_error(&self) -> Option<io::Error> {
        self.out.lock().expect("jsonl lock").error.take()
    }
}

impl<W: Write + Send> crate::Recorder for JsonlRecorder<W> {
    fn record(&self, t: Micros, event: Event) {
        let line = TimedEvent { t, event }.to_json().to_compact();
        let mut state = self.out.lock().expect("jsonl lock");
        if state.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(state.writer, "{line}") {
            state.error = Some(e);
        }
    }

    fn flush(&self) {
        let mut state = self.out.lock().expect("jsonl lock");
        if state.error.is_none() {
            if let Err(e) = state.writer.flush() {
                state.error = Some(e);
            }
        }
    }
}

/// Serialise events as JSONL text.
pub fn write_jsonl(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json().to_compact());
        out.push('\n');
    }
    out
}

/// Serialise events as a Chrome `trace_event` JSON array.
pub fn write_chrome(events: &[TimedEvent]) -> String {
    let mut entries: Vec<Value> = Vec::new();
    // One named track (tid) per resource/agent/subsystem, in first-seen
    // order so the output is deterministic.
    let mut tracks: Vec<String> = Vec::new();
    for event in events {
        let track = event.event.track();
        let tid = match tracks.iter().position(|t| t == track) {
            Some(i) => i,
            None => {
                tracks.push(track.to_string());
                tracks.len() - 1
            }
        };
        entries.push(json::obj(vec![
            ("name", json::s(event.event.kind())),
            ("cat", json::s("agentgrid")),
            ("ph", json::s("i")),
            ("s", json::s("t")),
            ("ts", json::num(event.t as f64)),
            ("pid", json::num(1.0)),
            ("tid", json::num(tid as f64)),
            ("args", event.to_json()),
        ]));
    }
    // Metadata events naming each track, prepended so viewers label
    // tracks before data arrives.
    let mut all: Vec<Value> = tracks
        .iter()
        .enumerate()
        .map(|(tid, name)| {
            json::obj(vec![
                ("name", json::s("thread_name")),
                ("ph", json::s("M")),
                ("pid", json::num(1.0)),
                ("tid", json::num(tid as f64)),
                ("args", json::obj(vec![("name", json::s(name.clone()))])),
            ])
        })
        .collect();
    all.extend(entries);
    Value::Arr(all).to_compact()
}

/// A trace-import failure.
#[derive(Debug)]
pub enum TraceReadError {
    /// The text was not valid JSON/JSONL.
    Parse(String),
    /// The JSON parsed but contained no recognisable events.
    NoEvents,
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Parse(msg) => write!(f, "trace parse error: {msg}"),
            TraceReadError::NoEvents => write!(f, "trace contains no agentgrid events"),
        }
    }
}

impl std::error::Error for TraceReadError {}

/// Read a trace back from either supported format (auto-detected: a
/// leading `[` means Chrome, anything else means JSONL).
pub fn read_trace(text: &str) -> Result<Vec<TimedEvent>, TraceReadError> {
    let trimmed = text.trim_start();
    let events = if trimmed.starts_with('[') {
        let doc = Value::parse(trimmed).map_err(|e| TraceReadError::Parse(e.to_string()))?;
        let entries = doc
            .as_arr()
            .ok_or_else(|| TraceReadError::Parse("chrome trace is not an array".into()))?;
        entries
            .iter()
            // Skip metadata ("M") entries; real entries carry the
            // original event under `args`.
            .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
            .filter_map(|e| e.get("args").and_then(TimedEvent::from_json))
            .collect::<Vec<_>>()
    } else {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Value::parse(line)
                .map_err(|e| TraceReadError::Parse(format!("line {}: {e}", i + 1)))?;
            let event = TimedEvent::from_json(&v)
                .ok_or_else(|| TraceReadError::Parse(format!("line {}: not an event", i + 1)))?;
            out.push(event);
        }
        out
    };
    if events.is_empty() {
        return Err(TraceReadError::NoEvents);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::one_of_each_variant;
    use crate::Recorder;

    #[test]
    fn jsonl_roundtrips_every_variant() {
        let events = one_of_each_variant();
        let text = write_jsonl(&events);
        assert_eq!(read_trace(&text).unwrap(), events);
    }

    #[test]
    fn chrome_roundtrips_every_variant() {
        let events = one_of_each_variant();
        let text = write_chrome(&events);
        assert_eq!(read_trace(&text).unwrap(), events);
    }

    #[test]
    fn chrome_trace_is_wellformed_trace_event_json() {
        let events = one_of_each_variant();
        let doc = Value::parse(&write_chrome(&events)).unwrap();
        let entries = doc.as_arr().unwrap();
        // Metadata first, then one entry per event.
        let data: Vec<&Value> = entries
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
            .collect();
        assert_eq!(data.len(), events.len());
        for entry in entries {
            assert!(entry.get("pid").is_some());
            assert!(entry.get("tid").is_some());
            let ph = entry.get("ph").and_then(Value::as_str).unwrap();
            assert!(ph == "i" || ph == "M");
            if ph == "i" {
                assert!(entry.get("ts").and_then(Value::as_f64).is_some());
                assert_eq!(entry.get("cat").and_then(Value::as_str), Some("agentgrid"));
            }
        }
    }

    #[test]
    fn chrome_escapes_hostile_strings() {
        // Resource names with quotes, backslashes and control bytes must
        // not corrupt the document.
        let events = vec![crate::event::TimedEvent {
            t: 1,
            event: crate::event::Event::TaskReject {
                task: 1,
                resource: "S\"1\\ \n\t\u{01}end".to_string(),
            },
        }];
        let text = write_chrome(&events);
        assert!(Value::parse(&text).is_ok());
        assert_eq!(read_trace(&text).unwrap(), events);
    }

    #[test]
    fn jsonl_recorder_streams_lines() {
        let recorder = JsonlRecorder::new(Vec::new());
        for event in one_of_each_variant() {
            recorder.record(event.t, event.event);
        }
        recorder.flush();
        assert!(recorder.take_error().is_none());
        let bytes = recorder.out.into_inner().unwrap().writer;
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(read_trace(&text).unwrap(), one_of_each_variant());
    }

    #[test]
    fn jsonl_recorder_remembers_first_io_error() {
        struct FailAfter(usize);
        impl std::io::Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    Err(std::io::Error::other("disk full"))
                } else {
                    self.0 -= 1;
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let recorder = JsonlRecorder::new(FailAfter(1));
        let [first, second, ..] = &one_of_each_variant()[..] else {
            unreachable!()
        };
        recorder.record(first.t, first.event.clone());
        recorder.record(second.t, second.event.clone());
        assert!(recorder.take_error().is_some());
        assert!(recorder.take_error().is_none(), "error reported once");
    }

    #[test]
    fn read_trace_rejects_garbage() {
        assert!(matches!(
            read_trace("not json"),
            Err(TraceReadError::Parse(_))
        ));
        assert!(matches!(read_trace("[]"), Err(TraceReadError::NoEvents)));
        assert!(matches!(read_trace(""), Err(TraceReadError::NoEvents)));
    }
}
