//! Online invariant checking over the event stream.
//!
//! [`InvariantRecorder`] is a [`Recorder`] sink that validates the
//! system's behavioural contracts *while the run happens* instead of
//! inspecting results afterwards. It can be attached to any test,
//! bench, or `agentgrid run --verify` invocation; the verify crate's
//! fuzzer drives whole random simulations under it.
//!
//! Checked invariants:
//!
//! - **Exactly-once completion** — a task id finishes at most once,
//!   even when chaos crashes lose and resubmit it (the dedup set and
//!   the stale-completion guard in the grid exist to uphold this).
//! - **Causal ordering** — a task never starts more often than it was
//!   submitted and never finishes more often than it started; in
//!   [`CheckMode::Strict`] (chaos-free) streams each happens at most
//!   once and nothing follows a finish.
//! - **Freetime soundness** — every [`Event::FreetimeSample`] advertises
//!   a freetime at or past both the sampling instant and the committed
//!   ledger makespan, and the committed makespan itself is monotone
//!   per resource between crash boundaries (an
//!   [`Event::AgentDown`]/[`Event::AgentUp`] truncates the ledger, so
//!   the floor resets there).
//! - **Horizon consistency** — [`Event::EngineHorizon`] never reports a
//!   horizon earlier than the latest completion seen.
//! - **GA legitimacy** — every [`Event::GaSolutionCheck`] carries
//!   `legit: true`: the committed solution's ordering is a permutation
//!   and every node mask is non-empty.
//!
//! An [`Event::EngineHorizon`] also marks the end of one experiment
//! run; per-run state (task counters, ledger floors) resets there so a
//! single recorder can check a multi-run stream such as `run_table3`,
//! where the three experiments reuse the same task ids.

use crate::event::{Event, Micros};
use crate::recorder::Recorder;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// How tolerant the checker is of fault-injection artefacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckMode {
    /// Chaos-free stream: at most one submit/start/finish per task, no
    /// fault events at all. Any [`Event::AgentDown`],
    /// [`Event::TaskRecovered`] or similar is itself a violation.
    Strict,
    /// Fault-injected stream: crashes may lose and resubmit tasks, so
    /// submit/start counts can grow — but completion stays
    /// exactly-once and every sample stays sound.
    Chaos,
}

/// One observed contract breach.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Simulated instant of the offending event, microseconds.
    pub t: Micros,
    /// Stable name of the broken invariant (e.g.
    /// `exactly-once-completion`).
    pub invariant: &'static str,
    /// Human-readable specifics: ids, counters, the numbers involved.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t={}us] {}: {}", self.t, self.invariant, self.detail)
    }
}

/// Stored violations are capped so a catastrophically broken run cannot
/// exhaust memory; the overflow is counted instead.
const MAX_VIOLATIONS: usize = 256;

#[derive(Default)]
struct TaskCounters {
    submits: u32,
    starts: u32,
    finishes: u32,
}

#[derive(Default)]
struct CheckState {
    tasks: HashMap<u64, TaskCounters>,
    /// Per-resource floor for the committed ledger makespan.
    committed_floor: HashMap<String, Micros>,
    max_finish_t: Micros,
    events: u64,
    violations: Vec<Violation>,
    suppressed: u64,
}

/// A [`Recorder`] that checks invariants live instead of storing
/// events. See the [module docs](self) for the contract list.
pub struct InvariantRecorder {
    mode: CheckMode,
    state: Mutex<CheckState>,
}

impl InvariantRecorder {
    /// A checker for the given mode.
    pub fn new(mode: CheckMode) -> InvariantRecorder {
        InvariantRecorder {
            mode,
            state: Mutex::new(CheckState::default()),
        }
    }

    /// A checker for chaos-free runs ([`CheckMode::Strict`]).
    pub fn strict() -> InvariantRecorder {
        InvariantRecorder::new(CheckMode::Strict)
    }

    /// A checker for fault-injected runs ([`CheckMode::Chaos`]).
    pub fn chaos() -> InvariantRecorder {
        InvariantRecorder::new(CheckMode::Chaos)
    }

    /// The mode this checker runs in.
    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// Every violation seen so far (storage is capped; see
    /// [`InvariantRecorder::suppressed`]).
    pub fn violations(&self) -> Vec<Violation> {
        self.state.lock().unwrap().violations.clone()
    }

    /// Violations beyond the storage cap (counted, not stored).
    pub fn suppressed(&self) -> u64 {
        self.state.lock().unwrap().suppressed
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        let s = self.state.lock().unwrap();
        s.violations.is_empty() && s.suppressed == 0
    }

    /// Events observed so far (cheap sanity check that the recorder was
    /// actually attached).
    pub fn events_seen(&self) -> u64 {
        self.state.lock().unwrap().events
    }

    /// A multi-line human-readable report: one line per violation, or
    /// a clean bill of health.
    pub fn report(&self) -> String {
        let s = self.state.lock().unwrap();
        if s.violations.is_empty() && s.suppressed == 0 {
            return format!("invariants: clean ({} events checked)", s.events);
        }
        let mut out = format!(
            "invariants: {} violation(s) over {} events\n",
            s.violations.len() as u64 + s.suppressed,
            s.events
        );
        for v in &s.violations {
            out.push_str(&format!("  {v}\n"));
        }
        if s.suppressed > 0 {
            out.push_str(&format!("  ... and {} more (suppressed)\n", s.suppressed));
        }
        out
    }
}

fn push(state: &mut CheckState, t: Micros, invariant: &'static str, detail: String) {
    if state.violations.len() < MAX_VIOLATIONS {
        state.violations.push(Violation {
            t,
            invariant,
            detail,
        });
    } else {
        state.suppressed += 1;
    }
}

impl Recorder for InvariantRecorder {
    fn record(&self, t: Micros, event: Event) {
        let strict = self.mode == CheckMode::Strict;
        let s = &mut *self.state.lock().unwrap();
        s.events += 1;
        match event {
            Event::TaskSubmit { task, .. } => {
                let c = s.tasks.entry(task).or_default();
                c.submits += 1;
                let (submits, finishes) = (c.submits, c.finishes);
                if strict && submits > 1 {
                    push(
                        s,
                        t,
                        "single-submit",
                        format!("task {task} submitted {submits} times in a chaos-free run"),
                    );
                }
                if finishes > 0 {
                    // Even under chaos a finished task must never be
                    // resubmitted: completion is settled state.
                    push(
                        s,
                        t,
                        "submit-after-finish",
                        format!("task {task} resubmitted after completing"),
                    );
                }
            }
            Event::TaskStart { task, .. } => {
                let c = s.tasks.entry(task).or_default();
                let before = *c;
                c.starts += 1;
                if before.starts >= before.submits {
                    push(
                        s,
                        t,
                        "start-before-submit",
                        format!(
                            "task {task} started with {} start(s) against {} submit(s)",
                            before.starts, before.submits
                        ),
                    );
                }
                if strict && before.starts > 0 {
                    push(
                        s,
                        t,
                        "single-start",
                        format!("task {task} started twice in a chaos-free run"),
                    );
                }
                if before.finishes > 0 {
                    push(
                        s,
                        t,
                        "start-after-finish",
                        format!("task {task} started again after completing"),
                    );
                }
            }
            Event::TaskFinish { task, .. } => {
                let c = s.tasks.entry(task).or_default();
                let before = *c;
                c.finishes += 1;
                if before.finishes >= 1 {
                    push(
                        s,
                        t,
                        "exactly-once-completion",
                        format!("task {task} completed {} times", before.finishes + 1),
                    );
                } else if before.finishes >= before.starts {
                    push(
                        s,
                        t,
                        "finish-without-start",
                        format!(
                            "task {task} finished with {} start(s) on record",
                            before.starts
                        ),
                    );
                }
                s.max_finish_t = s.max_finish_t.max(t);
            }
            Event::TaskDeadlineMiss { task, .. } => {
                let finishes = s.tasks.get(&task).map_or(0, |c| c.finishes);
                if finishes == 0 {
                    push(
                        s,
                        t,
                        "miss-without-finish",
                        format!("task {task} reported late without a completion"),
                    );
                }
            }
            Event::FreetimeSample {
                resource,
                freetime,
                committed,
            } => {
                if freetime < t {
                    push(
                        s,
                        t,
                        "freetime-behind-clock",
                        format!("{resource} advertised freetime {freetime}us before now"),
                    );
                }
                if freetime < committed {
                    push(
                        s,
                        t,
                        "freetime-below-ledger",
                        format!(
                            "{resource} advertised freetime {freetime}us below the \
                             committed makespan {committed}us"
                        ),
                    );
                }
                match s.committed_floor.get(&resource) {
                    Some(&floor) if committed < floor => {
                        push(
                            s,
                            t,
                            "ledger-went-backwards",
                            format!(
                                "{resource} committed makespan fell {floor}us -> \
                                 {committed}us without a crash"
                            ),
                        );
                    }
                    _ => {}
                }
                s.committed_floor.insert(resource, committed);
            }
            Event::AgentDown { ref resource } | Event::AgentUp { ref resource } => {
                // A crash truncates the ledger (running allocations are
                // aborted), so the monotonicity floor resets here.
                s.committed_floor.remove(resource);
                if strict {
                    push(
                        s,
                        t,
                        "chaos-in-strict",
                        format!("{} event in a chaos-free stream", event.kind()),
                    );
                }
            }
            Event::MsgDropped { .. }
            | Event::TaskRecovered { .. }
            | Event::RetryExhausted { .. }
            | Event::ScaleDirective { .. }
                if strict =>
            {
                push(
                    s,
                    t,
                    "chaos-in-strict",
                    format!("{} event in a chaos-free stream", event.kind()),
                );
            }
            Event::GaSolutionCheck {
                resource,
                tasks,
                legit: false,
            } => {
                push(
                    s,
                    t,
                    "ga-solution-legitimacy",
                    format!("{resource} committed an illegitimate solution over {tasks} task(s)"),
                );
            }
            Event::EngineHorizon { horizon } => {
                if horizon < s.max_finish_t {
                    push(
                        s,
                        t,
                        "horizon-behind-completions",
                        format!(
                            "horizon {horizon}us precedes the latest completion at {}us",
                            s.max_finish_t
                        ),
                    );
                }
                // End-of-run boundary: the next experiment in a
                // multi-run stream reuses task ids and restarts the
                // clock, so per-run state resets here.
                s.tasks.clear();
                s.committed_floor.clear();
                s.max_finish_t = 0;
            }
            _ => {}
        }
    }
}

impl Clone for TaskCounters {
    fn clone(&self) -> Self {
        *self
    }
}

impl Copy for TaskCounters {}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(task: u64) -> Event {
        Event::TaskSubmit {
            task,
            resource: "S1".into(),
            deadline: 60_000_000,
        }
    }

    fn start(task: u64) -> Event {
        Event::TaskStart {
            task,
            resource: "S1".into(),
            nodes: 2,
            queue_wait: 0,
        }
    }

    fn finish(task: u64) -> Event {
        Event::TaskFinish {
            task,
            resource: "S1".into(),
            deadline_met: true,
        }
    }

    fn names(rec: &InvariantRecorder) -> Vec<&'static str> {
        rec.violations().iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn clean_lifecycle_is_clean_in_both_modes() {
        for rec in [InvariantRecorder::strict(), InvariantRecorder::chaos()] {
            rec.record(0, submit(1));
            rec.record(1, start(1));
            rec.record(5, finish(1));
            assert!(rec.is_clean(), "{}", rec.report());
            assert_eq!(rec.events_seen(), 3);
        }
    }

    #[test]
    fn duplicate_completion_caught_in_both_modes() {
        for rec in [InvariantRecorder::strict(), InvariantRecorder::chaos()] {
            rec.record(0, submit(1));
            rec.record(1, start(1));
            rec.record(5, finish(1));
            rec.record(6, finish(1));
            assert!(names(&rec).contains(&"exactly-once-completion"));
        }
    }

    #[test]
    fn start_before_submit_caught() {
        let rec = InvariantRecorder::chaos();
        rec.record(0, start(7));
        assert_eq!(names(&rec), vec!["start-before-submit"]);
    }

    #[test]
    fn resubmission_allowed_only_under_chaos() {
        let strict = InvariantRecorder::strict();
        let chaos = InvariantRecorder::chaos();
        for rec in [&strict, &chaos] {
            rec.record(0, submit(1));
            rec.record(1, start(1));
            // Crash loses the task; the grid resubmits it.
            rec.record(2, submit(1));
            rec.record(3, start(1));
            rec.record(9, finish(1));
        }
        assert_eq!(names(&strict), vec!["single-submit", "single-start"]);
        assert!(chaos.is_clean(), "{}", chaos.report());
    }

    #[test]
    fn fault_events_flag_strict_mode() {
        let rec = InvariantRecorder::strict();
        rec.record(
            3,
            Event::AgentDown {
                resource: "S2".into(),
            },
        );
        assert_eq!(names(&rec), vec!["chaos-in-strict"]);
    }

    #[test]
    fn freetime_sample_soundness() {
        let rec = InvariantRecorder::strict();
        // Sound: freetime at now, ledger behind it.
        rec.record(
            10,
            Event::FreetimeSample {
                resource: "S1".into(),
                freetime: 10,
                committed: 5,
            },
        );
        assert!(rec.is_clean());
        // Freetime behind the clock and below the ledger.
        rec.record(
            20,
            Event::FreetimeSample {
                resource: "S1".into(),
                freetime: 15,
                committed: 30,
            },
        );
        let got = names(&rec);
        assert!(got.contains(&"freetime-behind-clock"));
        assert!(got.contains(&"freetime-below-ledger"));
    }

    #[test]
    fn ledger_monotone_with_crash_reset() {
        let sample = |freetime, committed| Event::FreetimeSample {
            resource: "S1".into(),
            freetime,
            committed,
        };
        let rec = InvariantRecorder::chaos();
        rec.record(0, sample(50, 50));
        rec.record(1, sample(40, 40));
        assert_eq!(names(&rec), vec!["ledger-went-backwards"]);

        let rec = InvariantRecorder::chaos();
        rec.record(0, sample(50, 50));
        rec.record(
            1,
            Event::AgentDown {
                resource: "S1".into(),
            },
        );
        // The crash truncated the ledger: a lower committed value is fine.
        rec.record(2, sample(40, 40));
        assert!(rec.is_clean(), "{}", rec.report());
    }

    #[test]
    fn illegitimate_ga_solution_caught() {
        let rec = InvariantRecorder::strict();
        rec.record(
            0,
            Event::GaSolutionCheck {
                resource: "S1".into(),
                tasks: 4,
                legit: false,
            },
        );
        assert_eq!(names(&rec), vec!["ga-solution-legitimacy"]);
    }

    #[test]
    fn horizon_must_cover_completions() {
        let rec = InvariantRecorder::strict();
        rec.record(0, submit(1));
        rec.record(1, start(1));
        rec.record(90, finish(1));
        rec.record(90, Event::EngineHorizon { horizon: 50 });
        assert_eq!(names(&rec), vec!["horizon-behind-completions"]);
    }

    #[test]
    fn engine_horizon_resets_per_run_state() {
        let rec = InvariantRecorder::strict();
        rec.record(0, submit(1));
        rec.record(1, start(1));
        rec.record(9, finish(1));
        rec.record(9, Event::EngineHorizon { horizon: 9 });
        // Next experiment in the same stream reuses task id 1 and an
        // earlier clock; neither is a violation across the boundary.
        rec.record(0, submit(1));
        rec.record(1, start(1));
        rec.record(5, finish(1));
        rec.record(5, Event::EngineHorizon { horizon: 5 });
        assert!(rec.is_clean(), "{}", rec.report());
    }

    #[test]
    fn violation_storage_is_capped() {
        let rec = InvariantRecorder::chaos();
        for i in 0..(MAX_VIOLATIONS as u64 + 10) {
            rec.record(i, start(i)); // every one is start-before-submit
        }
        assert_eq!(rec.violations().len(), MAX_VIOLATIONS);
        assert_eq!(rec.suppressed(), 10);
        assert!(!rec.is_clean());
        assert!(rec.report().contains("more (suppressed)"));
    }
}
