//! A small self-contained JSON value, parser and writer.
//!
//! The workspace builds fully offline, so this module stands in for
//! `serde_json` wherever the system reads or writes JSON: telemetry
//! traces, `CaseStudyResults` files, and the CLI's `--json` output.
//! Objects preserve insertion order (they are association lists, not
//! maps), which keeps emitted files stable across runs — a requirement
//! for the byte-identity determinism tests.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. `f64` covers every integer the system emits
    /// (sim times in microseconds stay far below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Multi-line rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Value::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d)
                })
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Append `s` as a JSON string literal, escaping per RFC 8259.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// A parse failure with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                            continue; // hex4 consumed the digits already
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction: we parse &str).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Shorthand for building an object value.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Shorthand for a number value.
pub fn num(n: f64) -> Value {
    Value::Num(n)
}

/// Shorthand for a string value.
pub fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = obj(vec![
            ("name", s("sweep3d")),
            ("count", num(3.0)),
            ("ratio", num(0.25)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            ("items", Value::Arr(vec![num(1.0), num(2.0)])),
        ]);
        let text = v.to_compact();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        for raw in [
            "quote \" backslash \\",
            "newline\ntab\t",
            "ctrl \u{01} end",
            "naïve 👍",
        ] {
            let text = Value::Str(raw.to_string()).to_compact();
            assert_eq!(Value::parse(&text).unwrap(), Value::Str(raw.to_string()));
        }
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            Value::parse(r#""Aé👍""#).unwrap(),
            Value::Str("Aé👍".to_string())
        );
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(num(42.0).to_compact(), "42");
        assert_eq!(num(-7.0).to_compact(), "-7");
        assert_eq!(num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn pretty_form_is_reparseable() {
        let v = obj(vec![
            ("outer", obj(vec![("inner", Value::Arr(vec![num(1.0)]))])),
            ("empty", Value::Arr(vec![])),
        ]);
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
        assert!(v.to_pretty().contains("\n  "));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = obj(vec![("n", num(3.0)), ("s", s("x"))]);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(num(1.5).as_u64(), None);
    }
}
