//! # agentgrid-telemetry
//!
//! Structured tracing and metrics for the agentgrid stack.
//!
//! The system's layers (simulation engine, GA scheduler, PACE
//! evaluation cache, agent hierarchy, cluster executor) emit
//! [`Event`]s through a [`Telemetry`] handle stamped with simulated
//! time. The handle is disabled by default and costs one predictable
//! branch per instrumentation point when off; when on it feeds any
//! [`Recorder`] sink:
//!
//! - [`RingRecorder`] — in-memory, bounded, for tests and buffering;
//! - [`JsonlRecorder`] / [`export::write_jsonl`] — one JSON object per
//!   line;
//! - [`export::write_chrome`] — Chrome `trace_event` JSON loadable in
//!   Perfetto;
//! - [`AggregateRecorder`] — counters per event kind plus log-linear
//!   histograms (p50/p90/p99) for queue wait, discovery hops and GA
//!   generation time;
//! - [`InvariantRecorder`] — checks behavioural invariants live
//!   (exactly-once completion, freetime soundness, GA solution
//!   legitimacy) instead of storing the stream.
//!
//! This crate has no dependencies (its [`json`] module is a
//! self-contained parser/writer) and sits below every other agentgrid
//! crate.

#![warn(missing_docs)]

pub mod aggregate;
pub mod event;
pub mod export;
pub mod invariant;
pub mod json;
pub mod names;
pub mod prometheus;
pub mod recorder;

pub use aggregate::{Aggregate, AggregateRecorder, LogLinearHistogram};
pub use event::{Event, Micros, TimedEvent};
pub use export::{read_trace, write_chrome, write_jsonl, JsonlRecorder, TraceReadError};
pub use invariant::{CheckMode, InvariantRecorder, Violation};
pub use names::{NameTable, ResourceId};
pub use recorder::{MultiRecorder, NoopRecorder, Recorder, RingRecorder, Telemetry};
