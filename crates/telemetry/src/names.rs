//! Dense interned resource identifiers.
//!
//! Every grid resource (equivalently: agent, since the paper pairs one
//! agent with one resource) is named by a string such as `"S5"` or
//! `"A137"`. Strings are the right currency at construction time and in
//! reports, but inside the event loop they force a `BTreeMap<String, _>`
//! lookup — a pointer-chasing string comparison — on every event, and a
//! heap allocation every time a name is cloned into an event or a trace
//! line. At the thousand-agent topologies the ROADMAP targets, that
//! bookkeeping dominates the run.
//!
//! [`NameTable`] interns the full resource set once, up front, into dense
//! [`ResourceId`]s (`u32` indices), so the hot path indexes `Vec`s
//! instead of walking trees. Two properties are load-bearing:
//!
//! 1. **Sorted interning.** Ids are assigned in lexicographic name
//!    order, so iterating resources by ascending id visits them in
//!    exactly the order `BTreeMap<String, _>` iteration used to. Every
//!    ordering the legacy string-keyed code relied on (monitor-poll
//!    bootstrap order, `Random`/`RoundRobin` index→name mapping, ACT
//!    candidate tie-breaking) is reproduced bit for bit.
//! 2. **Immutability.** The table is frozen at construction and shared
//!    via `Arc`, so a `ResourceId` can never dangle and id→name lookup
//!    is a branchless slice index.

use std::fmt;
use std::sync::Arc;

/// A dense identifier for one grid resource / agent.
///
/// Ids are indices into the [`NameTable`] that produced them; they are
/// assigned in lexicographic name order (see the module docs for why
/// that matters). `ResourceId` is `Copy` and 4 bytes, so events and
/// neighbour lists carry it for free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An immutable, sorted intern table mapping resource names to dense
/// [`ResourceId`]s and back.
///
/// ```
/// use agentgrid_telemetry::{NameTable, ResourceId};
///
/// let table = NameTable::from_names(["S2", "S1", "S10"]);
/// // Ids follow lexicographic name order, duplicates collapse.
/// assert_eq!(table.id("S1"), Some(ResourceId(0)));
/// assert_eq!(table.id("S10"), Some(ResourceId(1)));
/// assert_eq!(table.id("S2"), Some(ResourceId(2)));
/// assert_eq!(table.name(ResourceId(1)), "S10");
/// assert_eq!(table.len(), 3);
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct NameTable {
    /// Names in id order == lexicographic order.
    names: Vec<Arc<str>>,
}

impl NameTable {
    /// Intern `names`, deduplicated and sorted lexicographically.
    pub fn from_names<I, S>(names: I) -> Arc<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut names: Vec<Arc<str>> = names.into_iter().map(|n| Arc::from(n.as_ref())).collect();
        names.sort_unstable();
        names.dedup();
        Arc::new(NameTable { names })
    }

    /// The id for `name`, if interned.
    #[inline]
    pub fn id(&self, name: &str) -> Option<ResourceId> {
        self.names
            .binary_search_by(|n| n.as_ref().cmp(name))
            .ok()
            .map(|i| ResourceId(i as u32))
    }

    /// The id for `name`; panics with a clear message if unknown.
    ///
    /// Use at construction/reporting edges where an unknown name is a
    /// configuration bug, not a runtime condition.
    #[inline]
    pub fn expect_id(&self, name: &str) -> ResourceId {
        self.id(name)
            .unwrap_or_else(|| panic!("unknown resource name {name:?}"))
    }

    /// The name for `id`. Panics if `id` came from a different table.
    #[inline]
    pub fn name(&self, id: ResourceId) -> &str {
        &self.names[id.index()]
    }

    /// The name for `id` as a shared `Arc<str>` (no allocation).
    #[inline]
    pub fn name_arc(&self, id: ResourceId) -> Arc<str> {
        Arc::clone(&self.names[id.index()])
    }

    /// Number of interned names.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All ids in ascending order (== lexicographic name order).
    pub fn ids(&self) -> impl ExactSizeIterator<Item = ResourceId> + '_ {
        (0..self.names.len() as u32).map(ResourceId)
    }

    /// All names in id order (== lexicographic order).
    pub fn names(&self) -> impl ExactSizeIterator<Item = &str> + '_ {
        self.names.iter().map(|n| n.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_sorted_name_order() {
        let t = NameTable::from_names(["R3", "R1", "R2"]);
        assert_eq!(
            t.names().collect::<Vec<_>>(),
            ["R1", "R2", "R3"],
            "id order must equal BTreeMap iteration order"
        );
        for (i, name) in t.names().enumerate() {
            assert_eq!(t.id(name), Some(ResourceId(i as u32)));
            assert_eq!(t.name(ResourceId(i as u32)), name);
        }
    }

    #[test]
    fn duplicates_collapse() {
        let t = NameTable::from_names(["A", "B", "A"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unknown_names_are_none() {
        let t = NameTable::from_names(["A"]);
        assert_eq!(t.id("Z"), None);
    }

    #[test]
    #[should_panic(expected = "unknown resource name")]
    fn expect_id_panics_on_unknown() {
        let t = NameTable::from_names(["A"]);
        t.expect_id("Z");
    }

    #[test]
    fn lexicographic_not_numeric() {
        // "A10" sorts before "A2": the table must agree with string
        // order, not human numeric order, because the legacy BTreeMap
        // did too.
        let t = NameTable::from_names(["A2", "A10", "A1"]);
        assert_eq!(t.names().collect::<Vec<_>>(), ["A1", "A10", "A2"]);
    }
}
