//! Prometheus text-format exposition of the aggregating sink.
//!
//! [`render`] turns an [`Aggregate`] snapshot (plus caller-supplied
//! gauges) into the classic `text/plain; version=0.0.4` exposition
//! format: `# HELP`/`# TYPE` headers, one sample per line, histograms
//! as cumulative `le` buckets with `_sum`/`_count`. The bucket bounds
//! are quantised to the log-linear histogram's own grid (exact below
//! 16, ≤ 6.25% relative error above), which keeps the export lossless
//! with respect to what the histogram actually stored.
//!
//! [`parse`] is the matching minimal reader — enough to round-trip the
//! output of [`render`] and to let tests and the serve smoke job check
//! the endpoint without external tooling.

use crate::aggregate::{Aggregate, LogLinearHistogram};
use std::fmt::Write as _;

/// Cumulative bucket bounds for microsecond-valued histograms: decades
/// from 1 µs to 1000 s.
const US_BOUNDS: [u64; 10] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Cumulative bucket bounds for hop counts.
const HOP_BOUNDS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// One parsed sample line: metric name, label pairs, value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (e.g. `agentgrid_queue_wait_us_bucket`).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Render `agg` (plus caller-supplied `gauges`, each `(name, help,
/// value)`) in Prometheus text exposition format. Deterministic: equal
/// inputs produce byte-identical output (counters iterate a `BTreeMap`,
/// bucket ladders are fixed).
pub fn render(agg: &Aggregate, gauges: &[(&str, &str, f64)]) -> String {
    let mut out = String::new();
    out.push_str("# HELP agentgrid_events_total Telemetry events observed, by kind.\n");
    out.push_str("# TYPE agentgrid_events_total counter\n");
    for (kind, count) in &agg.counters {
        let _ = writeln!(
            out,
            "agentgrid_events_total{{kind=\"{}\"}} {count}",
            escape_label(kind)
        );
    }
    out.push_str("# HELP agentgrid_cache_hits_total GA evaluation-cache hits.\n");
    out.push_str("# TYPE agentgrid_cache_hits_total counter\n");
    let _ = writeln!(out, "agentgrid_cache_hits_total {}", agg.cache_hits);
    out.push_str("# HELP agentgrid_cache_misses_total GA evaluation-cache misses.\n");
    out.push_str("# TYPE agentgrid_cache_misses_total counter\n");
    let _ = writeln!(out, "agentgrid_cache_misses_total {}", agg.cache_misses);
    render_histogram(
        &mut out,
        "agentgrid_queue_wait_us",
        "Queue wait per started task, simulated microseconds.",
        &agg.queue_wait_us,
        &US_BOUNDS,
    );
    render_histogram(
        &mut out,
        "agentgrid_discovery_hops",
        "Hops consumed per discovery decision.",
        &agg.discovery_hops,
        &HOP_BOUNDS,
    );
    render_histogram(
        &mut out,
        "agentgrid_ga_generation_wall_us",
        "Host wall-clock microseconds per GA generation.",
        &agg.ga_generation_wall_us,
        &US_BOUNDS,
    );
    render_histogram(
        &mut out,
        "agentgrid_deadline_late_us",
        "Lateness per missed deadline, simulated microseconds.",
        &agg.deadline_late_us,
        &US_BOUNDS,
    );
    for (name, help, value) in gauges {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(*value));
    }
    out
}

fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    h: &LogLinearHistogram,
    bounds: &[u64],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for b in bounds {
        let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {}", h.rank_le(*b));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parse Prometheus text exposition format into its sample lines.
/// Comments (`#`) and blank lines are skipped. Returns an error naming
/// the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = line
        .rsplit_once(|c: char| c.is_whitespace())
        .ok_or("missing value")?;
    let value: f64 = value.parse().map_err(|_| format!("bad value {value:?}"))?;
    let head = head.trim();
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or("unterminated label set")?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Label name up to '='.
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err(format!("unterminated value for label {key}")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some(c) => value.push(c),
                    None => return Err("dangling escape".to_string()),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(c) => return Err(format!("unexpected {c:?} after label value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TimedEvent};

    fn sample_aggregate() -> Aggregate {
        let events = vec![
            TimedEvent {
                t: 0,
                event: Event::TaskStart {
                    task: 1,
                    resource: "S1".into(),
                    nodes: 2,
                    queue_wait: 500,
                },
            },
            TimedEvent {
                t: 1,
                event: Event::Discovery {
                    task: 1,
                    agent: "S1".into(),
                    decision: "local".into(),
                    hops: 3,
                },
            },
        ];
        Aggregate::from_events(&events)
    }

    #[test]
    fn render_is_parseable_and_cumulative() {
        let text = render(&sample_aggregate(), &[("agentgrid_epsilon", "e", 1.5)]);
        let samples = parse(&text).expect("own output parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "agentgrid_events_total" && s.label("kind") == Some("task_start")));
        // Cumulative buckets are monotone and end at the count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "agentgrid_queue_wait_us_bucket")
            .collect();
        assert!(!buckets.is_empty());
        let mut prev = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "bucket counts must be cumulative");
            prev = b.value;
        }
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        let count = samples
            .iter()
            .find(|s| s.name == "agentgrid_queue_wait_us_count")
            .unwrap();
        assert_eq!(buckets.last().unwrap().value, count.value);
        // The gauge arrived too.
        assert!(samples
            .iter()
            .any(|s| s.name == "agentgrid_epsilon" && s.value == 1.5));
    }

    #[test]
    fn render_is_deterministic() {
        let a = render(&sample_aggregate(), &[]);
        let b = render(&sample_aggregate(), &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_escape_and_unescape() {
        let tricky = "a\"b\\c\nd";
        let line = format!("m{{kind=\"{}\"}} 1", escape_label(tricky));
        let parsed = parse_sample(&line).expect("parses");
        assert_eq!(parsed.label("kind"), Some(tricky));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("agentgrid_x").is_err());
        assert!(parse("agentgrid_x{le=\"1\" 2").is_err());
        assert!(parse("agentgrid_x{le=1} 2").is_err());
        assert!(parse("bad name 1").is_err());
        assert!(parse("# a comment\n\nagentgrid_ok 1\n").unwrap().len() == 1);
    }
}
