//! The [`Recorder`] trait, the cheap-to-pass [`Telemetry`] handle, and
//! the in-memory sinks.

use crate::event::{Event, Micros, TimedEvent};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A sink for structured events.
///
/// Implementations must be cheap and infallible from the caller's point
/// of view: recording is observation, never control flow, so a sink
/// that hits an IO error degrades (drops events, remembers the error)
/// rather than panicking into the simulation.
pub trait Recorder: Send + Sync {
    /// Accept one event stamped with simulated time `t`.
    fn record(&self, t: Micros, event: Event);

    /// Push any buffered output down to the underlying medium.
    fn flush(&self) {}
}

/// A recorder that drops everything. Exists so call sites can hold a
/// `&dyn Recorder` unconditionally; the usual disabled path is a
/// [`Telemetry`] handle whose inner option is `None`, which skips even
/// event construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn record(&self, _t: Micros, _event: Event) {}
}

/// The handle threaded through the system. `Clone` is an `Arc` bump;
/// the default handle is disabled.
///
/// The zero-cost-when-disabled contract: [`Telemetry::emit`] takes a
/// closure, so when the handle is disabled the event — including any
/// `String` the payload would carry — is never constructed. The check
/// itself is one branch on an `Option` discriminant, which predicts
/// perfectly in instrumented-but-disabled hot loops.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle (records nothing, costs one branch per emit).
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A handle feeding `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Telemetry {
        Telemetry {
            inner: Some(recorder),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record the event built by `f` at simulated time `t`. `f` only
    /// runs when the handle is enabled.
    #[inline]
    pub fn emit(&self, t: Micros, f: impl FnOnce() -> Event) {
        if let Some(recorder) = &self.inner {
            recorder.record(t, f());
        }
    }

    /// Flush the underlying recorder, if any.
    pub fn flush(&self) {
        if let Some(recorder) = &self.inner {
            recorder.flush();
        }
    }
}

/// An in-memory sink keeping the most recent `capacity` events.
pub struct RingRecorder {
    buf: Mutex<Ring>,
}

struct Ring {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Keep at most `capacity` events, discarding the oldest.
    pub fn with_capacity(capacity: usize) -> RingRecorder {
        assert!(capacity > 0, "ring capacity must be positive");
        RingRecorder {
            buf: Mutex::new(Ring {
                events: VecDeque::new(),
                capacity,
                dropped: 0,
            }),
        }
    }

    /// Keep every event (bounded only by memory).
    pub fn unbounded() -> RingRecorder {
        RingRecorder::with_capacity(usize::MAX)
    }

    /// Copy out the retained events in recording order.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        self.buf
            .lock()
            .expect("ring lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().expect("ring lock").dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring lock").events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for RingRecorder {
    fn record(&self, t: Micros, event: Event) {
        let mut ring = self.buf.lock().expect("ring lock");
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TimedEvent { t, event });
    }
}

/// Fan one event stream out to several sinks.
pub struct MultiRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl MultiRecorder {
    /// Record into each of `sinks`, in order.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> MultiRecorder {
        MultiRecorder { sinks }
    }
}

impl Recorder for MultiRecorder {
    fn record(&self, t: Micros, event: Event) {
        for sink in &self.sinks {
            sink.record(t, event.clone());
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(processed: u64) -> Event {
        Event::EngineStep {
            processed,
            pending: 0,
        }
    }

    #[test]
    fn disabled_handle_never_builds_the_event() {
        let telemetry = Telemetry::disabled();
        let mut built = false;
        telemetry.emit(0, || {
            built = true;
            step(0)
        });
        assert!(!built);
        assert!(!telemetry.is_enabled());
    }

    #[test]
    fn enabled_handle_records() {
        let ring = Arc::new(RingRecorder::unbounded());
        let telemetry = Telemetry::new(ring.clone());
        telemetry.emit(5, || step(1));
        telemetry.emit(9, || step(2));
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t, 5);
        assert_eq!(events[1].event, step(2));
    }

    #[test]
    fn ring_discards_oldest_beyond_capacity() {
        let ring = RingRecorder::with_capacity(3);
        for i in 0..10 {
            ring.record(i, step(i));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(events[0].t, 7);
        assert_eq!(events[2].t, 9);
    }

    #[test]
    fn multi_recorder_duplicates() {
        let a = Arc::new(RingRecorder::unbounded());
        let b = Arc::new(RingRecorder::unbounded());
        let multi = MultiRecorder::new(vec![a.clone(), b.clone()]);
        multi.record(1, step(1));
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn noop_recorder_accepts_events() {
        NoopRecorder.record(0, step(0));
        NoopRecorder.flush();
    }
}
