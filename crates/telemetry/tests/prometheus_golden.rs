//! Golden-fixture test for the Prometheus text exporter.
//!
//! The exposition format is a wire contract — scrapers parse it byte by
//! byte — so the exact rendering (HELP/TYPE lines, label escaping,
//! bucket ladders, `+Inf` terminators, `_sum`/`_count` pairs, gauge
//! tail) is frozen in `tests/fixtures/prometheus_golden.txt`. Any
//! intentional format change must regenerate the fixture (set
//! `BLESS_PROMETHEUS=1` and re-run this test) and show up in review as
//! a fixture diff.

use agentgrid_telemetry::prometheus::{parse, render};
use agentgrid_telemetry::{Aggregate, Event, TimedEvent};

/// A small deterministic event stream touching every exported surface:
/// counters, the queue-wait/hops/GA/deadline histograms and the cache
/// tallies.
fn fixture_aggregate() -> Aggregate {
    let mut events = Vec::new();
    for task in 0..6u64 {
        events.push(TimedEvent {
            t: 1_000 * task,
            event: Event::TaskStart {
                task,
                resource: format!("R{}", task % 2),
                nodes: 4,
                queue_wait: 10u64.pow(task as u32 % 5),
            },
        });
        events.push(TimedEvent {
            t: 1_000 * task + 500,
            event: Event::TaskFinish {
                task,
                resource: format!("R{}", task % 2),
                deadline_met: task % 3 != 0,
            },
        });
    }
    events.push(TimedEvent {
        t: 7_000,
        event: Event::TaskDeadlineMiss {
            task: 3,
            resource: "R1".to_string(),
            late: 2_500_000,
        },
    });
    for (hops, task) in [(1u32, 10u64), (2, 11), (2, 12), (5, 13)] {
        events.push(TimedEvent {
            t: 8_000,
            event: Event::Discovery {
                task,
                agent: "S1".to_string(),
                decision: "dispatch".to_string(),
                hops,
            },
        });
    }
    events.push(TimedEvent {
        t: 9_000,
        event: Event::GaEvolve {
            resource: "R0".to_string(),
            generations: 10,
            best_cost: 42.5,
            converged: true,
            wall_us: 12_340,
            cache_hits: 90,
            cache_misses: 10,
        },
    });
    Aggregate::from_events(&events)
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/prometheus_golden.txt")
}

fn render_fixture() -> String {
    render(
        &fixture_aggregate(),
        &[
            (
                "agentgrid_epsilon_advance_seconds",
                "Mean completion advance over deadline.",
                123.25,
            ),
            (
                "agentgrid_resources_online",
                "Resources currently serving.",
                12.0,
            ),
        ],
    )
}

#[test]
fn exporter_output_matches_the_golden_fixture() {
    let text = render_fixture();
    let path = fixture_path();
    if std::env::var_os("BLESS_PROMETHEUS").is_some() {
        std::fs::write(&path, &text).expect("fixture written");
        return;
    }
    let expected = std::fs::read_to_string(&path).expect(
        "golden fixture readable (regenerate with BLESS_PROMETHEUS=1 cargo test -p agentgrid-telemetry)",
    );
    assert!(
        text == expected,
        "exporter drifted from {}:\n--- expected\n{expected}\n--- got\n{text}",
        path.display()
    );
}

#[test]
fn golden_fixture_round_trips_through_the_parser() {
    let text = render_fixture();
    let samples = parse(&text).expect("rendered exposition parses");
    assert!(!samples.is_empty());

    // Counters carry the event kinds the stream actually contained.
    let kind = |k: &str| {
        samples
            .iter()
            .find(|s| s.name == "agentgrid_events_total" && s.label("kind") == Some(k))
            .unwrap_or_else(|| panic!("missing events_total kind={k}"))
            .value
    };
    assert_eq!(kind("task_start"), 6.0);
    assert_eq!(kind("task_finish"), 6.0);
    assert_eq!(kind("task_deadline_miss"), 1.0);
    assert_eq!(kind("discovery"), 4.0);
    assert_eq!(kind("ga_evolve"), 1.0);

    // Histogram buckets are cumulative and end at +Inf == _count.
    let buckets: Vec<&_> = samples
        .iter()
        .filter(|s| s.name == "agentgrid_discovery_hops_bucket")
        .collect();
    assert!(buckets.len() >= 2);
    let mut last = 0.0;
    for b in &buckets {
        assert!(b.value >= last, "bucket counts must be cumulative");
        last = b.value;
    }
    assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
    let count = samples
        .iter()
        .find(|s| s.name == "agentgrid_discovery_hops_count")
        .expect("hops _count")
        .value;
    assert_eq!(buckets.last().unwrap().value, count);
    assert_eq!(count, 4.0);
    // le="2" sees the 1-hop and both 2-hop decisions.
    let le2 = buckets
        .iter()
        .find(|b| b.label("le") == Some("2"))
        .expect("le=2 bucket");
    assert_eq!(le2.value, 3.0);

    // _sum matches the recorded hop total (1 + 2 + 2 + 5).
    let sum = samples
        .iter()
        .find(|s| s.name == "agentgrid_discovery_hops_sum")
        .expect("hops _sum")
        .value;
    assert_eq!(sum, 10.0);

    // Cache counters and gauges survive the round trip.
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .value
    };
    assert_eq!(get("agentgrid_cache_hits_total"), 90.0);
    assert_eq!(get("agentgrid_cache_misses_total"), 10.0);
    assert_eq!(get("agentgrid_epsilon_advance_seconds"), 123.25);
    assert_eq!(get("agentgrid_resources_online"), 12.0);
}
