//! The verification CLI: a seeded fuzz campaign with shrinking.
//!
//! ```text
//! verify fuzz [--seeds N] [--start S] [--quick] [--serve] [--shards N] [--out FILE]
//! ```
//!
//! Runs `N` generated cases (default 100) starting at seed `S`
//! (default 0). Every failure is shrunk to a minimal replayable case
//! and printed as a ready-to-paste regression line; with `--out` a JSON
//! summary is written, and any failures also land in
//! `verify-fuzz-failures.txt` next to it so CI can upload them as an
//! artifact. Exits non-zero if any case failed.
//!
//! `--serve` switches to the serve-mode corpus: random JSONL request
//! streams plus elasticity directives pushed through the live-injection
//! serve loop (`GridService::run_scripted`) under the same checker.
//!
//! `--shards N` forces every case onto `N` agent-subtree shards
//! (DESIGN.md §13) instead of the generated per-case value: re-running
//! one corpus at several shard counts must give identical verdicts.

use agentgrid_verify::fuzz::fuzz_corpus_sharded;
use agentgrid_verify::serve_fuzz::serve_fuzz_corpus;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str =
    "usage: verify fuzz [--seeds N] [--start S] [--quick] [--serve] [--shards N] [--out FILE]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("fuzz") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut seeds: usize = 100;
    let mut start: u64 = 0;
    let mut quick = false;
    let mut serve = false;
    let mut shards: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seeds = v,
                None => return bad_usage("--seeds needs a number"),
            },
            "--start" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => start = v,
                None => return bad_usage("--start needs a number"),
            },
            "--quick" => quick = true,
            "--serve" => serve = true,
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => shards = Some(v),
                _ => return bad_usage("--shards needs a number >= 1"),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return bad_usage("--out needs a path"),
            },
            other => return bad_usage(&format!("unknown flag {other}")),
        }
    }

    // Failing candidates panic constantly while the shrinker probes
    // them; keep those backtraces off the terminal.
    std::panic::set_hook(Box::new(|_| {}));
    let mut ran = 0usize;
    let mut progress = |seed: u64, failure: Option<&agentgrid_verify::CaseFailure>| {
        ran += 1;
        if let Some(f) = failure {
            eprintln!("seed {seed}: FAILED ({f}) — shrinking...");
        } else if ran.is_multiple_of(25) {
            eprintln!("... {ran} cases, clean so far");
        }
    };
    let (summary, failure_lines) = if serve {
        if shards.is_some() {
            return bad_usage("--shards applies to the batch corpus, not --serve");
        }
        let report = serve_fuzz_corpus(start, seeds, quick, |case, failure| {
            progress(case.seed, failure)
        });
        let lines: Vec<(String, String, String)> = report
            .failures
            .iter()
            .map(|f| {
                (
                    format!("seed {} -> shrunk to: {:?}", f.case.seed, f.shrunk),
                    f.failure.to_string(),
                    f.shrunk.regression_line(),
                )
            })
            .collect();
        (
            Summary {
                label: "verify fuzz --serve",
                cases: report.cases,
                events: report.events,
                clean: report.is_clean(),
            },
            lines,
        )
    } else {
        let report = fuzz_corpus_sharded(start, seeds, quick, shards, |case, failure| {
            progress(case.seed, failure)
        });
        let lines: Vec<(String, String, String)> = report
            .failures
            .iter()
            .map(|f| {
                (
                    format!("seed {} -> shrunk to: {:?}", f.case.seed, f.shrunk),
                    f.failure.to_string(),
                    f.shrunk.regression_line(),
                )
            })
            .collect();
        (
            Summary {
                label: "verify fuzz",
                cases: report.cases,
                events: report.events,
                clean: report.is_clean(),
            },
            lines,
        )
    };
    let _ = std::panic::take_hook();

    println!(
        "{}: {} case(s), {} telemetry events checked, {} failure(s)",
        summary.label,
        summary.cases,
        summary.events,
        failure_lines.len()
    );
    let mut artifact_lines = Vec::new();
    for (head, failure, regression) in &failure_lines {
        println!("  {head}");
        println!("    failure: {failure}");
        println!("    regression: {regression}");
        artifact_lines.push(format!("{regression}\n  // {failure}\n"));
    }
    let failure_lines = artifact_lines;

    if let Some(path) = &out {
        if let Err(e) = write_report(path, &summary, &failure_lines, quick, start) {
            eprintln!("verify: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !failure_lines.is_empty() {
            let artifact = sibling(path, "verify-fuzz-failures.txt");
            if let Err(e) = std::fs::write(&artifact, failure_lines.concat()) {
                eprintln!("verify: cannot write {artifact}: {e}");
            } else {
                eprintln!("verify: failure artifact at {artifact}");
            }
        }
    }

    if summary.clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Corpus totals shared by both fuzz modes.
struct Summary {
    label: &'static str,
    cases: usize,
    events: u64,
    clean: bool,
}

fn bad_usage(msg: &str) -> ExitCode {
    eprintln!("verify: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Place `name` in the same directory as `path`.
fn sibling(path: &str, name: &str) -> String {
    match std::path::Path::new(path).parent() {
        Some(dir) if dir.as_os_str().is_empty() => name.to_string(),
        Some(dir) => dir.join(name).to_string_lossy().into_owned(),
        None => name.to_string(),
    }
}

fn write_report(
    path: &str,
    summary: &Summary,
    failure_lines: &[String],
    quick: bool,
    start: u64,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    let failures: Vec<String> = failure_lines
        .iter()
        .map(|l| format!("\"{}\"", escape(l.trim_end())))
        .collect();
    writeln!(
        f,
        "{{\"mode\": \"{}\", \"cases\": {}, \"start\": {start}, \"quick\": {quick}, \
         \"events\": {}, \"failures\": [{}]}}",
        summary.label,
        summary.cases,
        summary.events,
        failures.join(", ")
    )
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
