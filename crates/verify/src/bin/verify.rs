//! The verification CLI: a seeded fuzz campaign with shrinking.
//!
//! ```text
//! verify fuzz [--seeds N] [--start S] [--quick] [--serve] [--crash]
//!             [--replay FILE] [--shards N] [--policy P] [--out FILE]
//! ```
//!
//! Runs `N` generated cases (default 100) starting at seed `S`
//! (default 0). Every failure is shrunk to a minimal replayable case
//! and printed as a ready-to-paste regression line; with `--out` a JSON
//! summary is written, and any failures also land in
//! `verify-fuzz-failures.txt` next to it so CI can upload them as an
//! artifact. Exits non-zero if any case failed.
//!
//! `--serve` switches to the serve-mode corpus: random JSONL request
//! streams plus elasticity directives pushed through the live-injection
//! serve loop (`GridService::run_scripted`) under the same checker.
//!
//! `--crash` switches to the durability corpus: each serve case runs
//! with a write-ahead log, is killed at a seed-chosen point (half the
//! time with a torn log tail), recovered from the log and required to
//! finish bit-identical to an uninterrupted run.
//!
//! `--serve --replay FILE` is the determinism gate for recorded
//! sessions: the `agentgrid serve --record` file (or raw WAL) is
//! replayed twice and the two runs must match byte-for-byte.
//!
//! `--shards N` forces every case onto `N` agent-subtree shards
//! (DESIGN.md §13) instead of the generated per-case value: re-running
//! one corpus at several shard counts must give identical verdicts.
//!
//! `--policy P` pins every planned case (designs 2/3) to one scheduler
//! zoo entrant (`fifo|ga|batch|minmin|maxmin|sufferage|anneal`) instead
//! of the generated per-case draw, so a whole corpus can stress a
//! single policy. Without it each case draws its own policy, and a
//! failing case shrinks towards FIFO first (DESIGN.md §15).

use agentgrid::prelude::*;
use agentgrid_serve::{read_recording, GridService, ServeConfig, TunerConfig};
use agentgrid_verify::crash::crash_corpus;
use agentgrid_verify::fuzz::fuzz_corpus_with;
use agentgrid_verify::serve_fuzz::serve_fuzz_corpus;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: verify fuzz [--seeds N] [--start S] [--quick] [--serve] [--crash] \
                     [--replay FILE] [--shards N] [--policy P] [--out FILE]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("fuzz") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut seeds: usize = 100;
    let mut start: u64 = 0;
    let mut quick = false;
    let mut serve = false;
    let mut crash = false;
    let mut replay: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut policy: Option<PolicyKind> = None;
    let mut out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seeds = v,
                None => return bad_usage("--seeds needs a number"),
            },
            "--start" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => start = v,
                None => return bad_usage("--start needs a number"),
            },
            "--quick" => quick = true,
            "--serve" => serve = true,
            "--crash" => crash = true,
            "--replay" => match it.next() {
                Some(v) => replay = Some(v.clone()),
                None => return bad_usage("--replay needs a path"),
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => shards = Some(v),
                _ => return bad_usage("--shards needs a number >= 1"),
            },
            "--policy" => match it.next().and_then(|v| PolicyKind::parse(v)) {
                Some(p) => policy = Some(p),
                None => {
                    return bad_usage(
                        "--policy needs one of fifo|ga|batch|minmin|maxmin|sufferage|anneal",
                    )
                }
            },
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return bad_usage("--out needs a path"),
            },
            other => return bad_usage(&format!("unknown flag {other}")),
        }
    }
    if let Some(path) = &replay {
        if !serve || crash {
            return bad_usage("--replay needs --serve (and not --crash)");
        }
        return replay_gate(path);
    }

    // Failing candidates panic constantly while the shrinker probes
    // them; keep those backtraces off the terminal.
    std::panic::set_hook(Box::new(|_| {}));
    let mut ran = 0usize;
    let mut progress = |seed: u64, failure: Option<&agentgrid_verify::CaseFailure>| {
        ran += 1;
        if let Some(f) = failure {
            eprintln!("seed {seed}: FAILED ({f}) — shrinking...");
        } else if ran.is_multiple_of(25) {
            eprintln!("... {ran} cases, clean so far");
        }
    };
    let (summary, failure_lines) = if crash {
        if shards.is_some() {
            return bad_usage("--shards applies to the batch corpus, not --crash");
        }
        if policy.is_some() {
            return bad_usage("--policy applies to the batch corpus, not --crash");
        }
        let report = crash_corpus(start, seeds, quick, |case, failure| {
            progress(case.fuzz.seed, failure)
        });
        let lines: Vec<(String, String, String)> = report
            .failures
            .iter()
            .map(|f| {
                (
                    format!("seed {} -> shrunk to: {:?}", f.case.fuzz.seed, f.shrunk),
                    f.failure.to_string(),
                    format!("let case = {:?}; assert!(case.run().is_some());", f.shrunk),
                )
            })
            .collect();
        (
            Summary {
                label: "verify fuzz --crash",
                cases: report.cases,
                events: 0,
                clean: report.is_clean(),
            },
            lines,
        )
    } else if serve {
        if shards.is_some() {
            return bad_usage("--shards applies to the batch corpus, not --serve");
        }
        if policy.is_some() {
            return bad_usage("--policy applies to the batch corpus, not --serve");
        }
        let report = serve_fuzz_corpus(start, seeds, quick, |case, failure| {
            progress(case.seed, failure)
        });
        let lines: Vec<(String, String, String)> = report
            .failures
            .iter()
            .map(|f| {
                (
                    format!("seed {} -> shrunk to: {:?}", f.case.seed, f.shrunk),
                    f.failure.to_string(),
                    f.shrunk.regression_line(),
                )
            })
            .collect();
        (
            Summary {
                label: "verify fuzz --serve",
                cases: report.cases,
                events: report.events,
                clean: report.is_clean(),
            },
            lines,
        )
    } else {
        let report = fuzz_corpus_with(start, seeds, quick, shards, policy, |case, failure| {
            progress(case.seed, failure)
        });
        let lines: Vec<(String, String, String)> = report
            .failures
            .iter()
            .map(|f| {
                (
                    format!("seed {} -> shrunk to: {:?}", f.case.seed, f.shrunk),
                    f.failure.to_string(),
                    f.shrunk.regression_line(),
                )
            })
            .collect();
        (
            Summary {
                label: "verify fuzz",
                cases: report.cases,
                events: report.events,
                clean: report.is_clean(),
            },
            lines,
        )
    };
    let _ = std::panic::take_hook();

    println!(
        "{}: {} case(s), {} telemetry events checked, {} failure(s)",
        summary.label,
        summary.cases,
        summary.events,
        failure_lines.len()
    );
    let mut artifact_lines = Vec::new();
    for (head, failure, regression) in &failure_lines {
        println!("  {head}");
        println!("    failure: {failure}");
        println!("    regression: {regression}");
        artifact_lines.push(format!("{regression}\n  // {failure}\n"));
    }
    let failure_lines = artifact_lines;

    if let Some(path) = &out {
        if let Err(e) = write_report(path, &summary, &failure_lines, quick, start) {
            eprintln!("verify: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !failure_lines.is_empty() {
            let artifact = sibling(path, "verify-fuzz-failures.txt");
            if let Err(e) = std::fs::write(&artifact, failure_lines.concat()) {
                eprintln!("verify: cannot write {artifact}: {e}");
            } else {
                eprintln!("verify: failure artifact at {artifact}");
            }
        }
    }

    if summary.clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The recorded-session determinism gate (`--serve --replay FILE`):
/// replay the recording twice through the acceptance-order replay path
/// and require the two runs to match byte-for-byte under the checker.
fn replay_gate(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("verify: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (meta, lines) = match read_recording(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(meta) = meta else {
        eprintln!(
            "verify: {path} has no recording header; replay it with \
             `agentgrid serve --replay` and explicit topology flags instead"
        );
        return ExitCode::FAILURE;
    };
    let topology = match GridTopology::from_spec(&meta.topology) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("verify: {path} header: {e}");
            return ExitCode::FAILURE;
        }
    };
    let policy = match LocalPolicy::parse(&meta.policy) {
        Some(p) => p,
        None => {
            eprintln!("verify: {path} header: unknown policy `{}`", meta.policy);
            return ExitCode::FAILURE;
        }
    };
    let mut opts = RunOptions::paper();
    if meta.noise > 0.0 {
        opts.noise = NoiseModel::LogNormal { sigma: meta.noise };
    }
    let cfg = ServeConfig {
        topology,
        design: ExperimentDesign {
            number: 0,
            local_policy: policy,
            agents_enabled: meta.agents,
        },
        opts,
        seed: meta.seed,
        verify: true,
        tune: meta.tune.then(TunerConfig::default),
        wal: None,
        record: None,
    };
    let sim_metrics = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.contains("ga_generation_wall_us"))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    let a = match GridService::run_replay(&cfg, &lines) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let b = match GridService::run_replay(&cfg, &lines) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: second replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let deterministic = a.result.to_json() == b.result.to_json()
        && sim_metrics(&a.metrics_text) == sim_metrics(&b.metrics_text);
    println!(
        "verify fuzz --serve --replay: {} line(s), {} completed, deterministic: {}, clean: {}",
        lines.len(),
        a.completed,
        deterministic,
        a.clean && b.clean
    );
    if !deterministic {
        eprintln!("verify: the two replays diverged — the recording is not deterministic");
    }
    if !a.clean {
        eprintln!("{}", a.verify_report.unwrap_or_default());
    }
    if deterministic && a.clean && b.clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Corpus totals shared by both fuzz modes.
struct Summary {
    label: &'static str,
    cases: usize,
    events: u64,
    clean: bool,
}

fn bad_usage(msg: &str) -> ExitCode {
    eprintln!("verify: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Place `name` in the same directory as `path`.
fn sibling(path: &str, name: &str) -> String {
    match std::path::Path::new(path).parent() {
        Some(dir) if dir.as_os_str().is_empty() => name.to_string(),
        Some(dir) => dir.join(name).to_string_lossy().into_owned(),
        None => name.to_string(),
    }
}

fn write_report(
    path: &str,
    summary: &Summary,
    failure_lines: &[String],
    quick: bool,
    start: u64,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    let failures: Vec<String> = failure_lines
        .iter()
        .map(|l| format!("\"{}\"", escape(l.trim_end())))
        .collect();
    writeln!(
        f,
        "{{\"mode\": \"{}\", \"cases\": {}, \"start\": {start}, \"quick\": {quick}, \
         \"events\": {}, \"failures\": [{}]}}",
        summary.label,
        summary.cases,
        summary.events,
        failures.join(", ")
    )
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
