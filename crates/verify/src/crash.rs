//! Kill-at-random-point crash/recovery fuzzing for the durable serve
//! loop (`verify fuzz --crash`).
//!
//! Each case reuses a [`ServeFuzzCase`]'s seeded topology and stream,
//! serves it with a write-ahead log attached, and *kills* the session —
//! drops the service with no drain, no flush, no report — after a
//! seed-chosen number of accepted lines. Half the corpus additionally
//! tears the log at a random byte inside the final record, simulating a
//! crash mid-`write(2)`. A second session then opens the same log,
//! replays it, serves the remaining lines and drains.
//!
//! The recovered run must be **bit-identical** to an uninterrupted
//! reference serving the same stream over a fresh log: same result
//! JSON, same sim-deterministic metrics exposition, same final WAL
//! sequence number, clean under the online invariant checker. Anything
//! less means recovery lost, duplicated or reordered state.

use crate::fuzz::CaseFailure;
use crate::serve_fuzz::ServeFuzzCase;
use agentgrid_serve::{GridService, ServeLine, SyncPolicy, WalConfig};
use agentgrid_sim::RngStream;
use rand::Rng;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One crash/recovery scenario, fully determined by its fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashCase {
    /// The underlying serve scenario (topology, stream, tuner).
    pub fuzz: ServeFuzzCase,
    /// Lines accepted before the simulated SIGKILL (0 = crash before
    /// anything was logged; the full count = crash after the last
    /// accept but before the drain).
    pub kill_after: usize,
    /// Tear the log at a random byte inside its final record before
    /// recovering (crash mid-write).
    pub tear: bool,
}

impl CrashCase {
    /// Derive a scenario from `seed` alone. Same `(seed, quick)`, same
    /// case — including the kill point and the tear decision.
    pub fn generate(seed: u64, quick: bool) -> CrashCase {
        let fuzz = ServeFuzzCase::generate(seed, quick);
        let total = fuzz.lines().len();
        let mut rng = RngStream::root(seed).derive("verify/crash");
        let kill_after = rng.gen_range(0..=total);
        let tear = kill_after > 0 && rng.gen_range(0..2) == 0;
        CrashCase {
            fuzz,
            kill_after,
            tear,
        }
    }

    /// Run the crash → recover → compare cycle. `None` means the
    /// recovered session was bit-identical to the uninterrupted one.
    pub fn run(&self) -> Option<CaseFailure> {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| self.execute()));
        match outcome {
            Err(payload) => Some(CaseFailure::Panic(crate::fuzz::panic_message(&*payload))),
            Ok(Err(e)) => Some(CaseFailure::Accounting(e)),
            Ok(Ok(())) => None,
        }
    }

    fn execute(&self) -> Result<(), String> {
        let mut lines = self.fuzz.lines();
        // The order run_scripted applies them in; acceptance order is
        // what the WAL preserves and what task identity depends on.
        lines.sort_by_key(ServeLine::at);
        let total = lines.len();
        let kill = self.kill_after.min(total);

        let wal_ref = TempWal::new("ref");
        let wal_crash = TempWal::new("crash");

        // The uninterrupted reference: same stream, fresh log.
        let cfg_ref = self.fuzz.config(Some(wal_ref.config()));
        let reference = GridService::run_scripted(&cfg_ref, &lines)
            .map_err(|e| format!("reference run: {e}"))?;

        // Session 1: accept `kill` lines, then vanish mid-flight — no
        // drain, no WAL flush, no report. Dropping the service is the
        // closest in-process stand-in for SIGKILL.
        let cfg = self.fuzz.config(Some(wal_crash.config()));
        {
            let mut svc =
                GridService::open_live(&cfg, true).map_err(|e| format!("session 1 open: {e}"))?;
            svc.ingest(&lines[..kill])
                .map_err(|e| format!("session 1 ingest: {e}"))?;
            drop(svc);
        }
        if self.tear {
            tear_final_record(&wal_crash.path, self.fuzz.seed)?;
        }

        // Session 2: recover from the log, serve the rest, drain.
        let mut svc =
            GridService::open_live(&cfg, true).map_err(|e| format!("recovery open: {e}"))?;
        let replayed = svc.wal_replayed() as usize;
        if replayed > kill {
            return Err(format!(
                "recovery replayed {replayed} records but only {kill} were accepted"
            ));
        }
        if !self.tear && replayed != kill {
            return Err(format!(
                "un-torn log lost records: {replayed} replayed of {kill} accepted"
            ));
        }
        svc.ingest(&lines[replayed..])
            .map_err(|e| format!("session 2 ingest: {e}"))?;
        svc.drain().map_err(|e| format!("session 2 drain: {e}"))?;
        let recovered = svc.into_report();

        // Bit-identity with the uninterrupted run.
        if recovered.result.to_json() != reference.result.to_json() {
            return Err(format!(
                "recovered result diverged from the uninterrupted run\nrecovered: {}\nreference: {}",
                recovered.result.to_json(),
                reference.result.to_json()
            ));
        }
        let (rec_m, ref_m) = (
            sim_deterministic_metrics(&recovered.metrics_text),
            sim_deterministic_metrics(&reference.metrics_text),
        );
        if rec_m != ref_m {
            return Err(first_diff(
                "metrics diverged after recovery",
                &rec_m,
                &ref_m,
            ));
        }
        let final_seq = recovered.wal.as_ref().map_or(0, |w| w.final_seq);
        if final_seq != total as u64 {
            return Err(format!(
                "final wal seq {final_seq} != {total} accepted lines"
            ));
        }
        if !recovered.clean {
            return Err(format!(
                "recovered run violated invariants:\n{}",
                recovered.verify_report.unwrap_or_default()
            ));
        }
        Ok(())
    }
}

/// Shrink a failing crash case: earlier kill points first (a failure
/// that reproduces with `kill_after = 0` is a plain determinism bug),
/// then the tear, then the underlying stream via the serve shrinker's
/// dimensions.
pub fn shrink_crash(case: CrashCase) -> CrashCase {
    let mut best = case;
    loop {
        let mut candidates = Vec::new();
        if best.kill_after > 0 {
            candidates.push(CrashCase {
                kill_after: best.kill_after / 2,
                ..best
            });
            candidates.push(CrashCase {
                kill_after: best.kill_after - 1,
                ..best
            });
        }
        if best.tear {
            candidates.push(CrashCase {
                tear: false,
                ..best
            });
        }
        if best.fuzz.requests > 1 {
            candidates.push(CrashCase {
                fuzz: ServeFuzzCase {
                    requests: best.fuzz.requests / 2,
                    ..best.fuzz
                },
                kill_after: best.kill_after.min(best.fuzz.requests / 2),
                ..best
            });
        }
        if best.fuzz.scales > 0 {
            candidates.push(CrashCase {
                fuzz: ServeFuzzCase {
                    scales: best.fuzz.scales - 1,
                    ..best.fuzz
                },
                ..best
            });
        }
        if best.fuzz.tune {
            candidates.push(CrashCase {
                fuzz: ServeFuzzCase {
                    tune: false,
                    ..best.fuzz
                },
                ..best
            });
        }
        candidates.dedup();
        match candidates.into_iter().find(|c| c.run().is_some()) {
            Some(c) => best = c,
            None => return best,
        }
    }
}

/// One crash-corpus failure, shrunk and replayable.
#[derive(Clone, Debug)]
pub struct CrashFailure {
    /// The case as generated.
    pub case: CrashCase,
    /// Its minimal failing neighbour.
    pub shrunk: CrashCase,
    /// Why the shrunken case fails.
    pub failure: CaseFailure,
}

/// A whole crash-corpus run.
#[derive(Clone, Debug, Default)]
pub struct CrashReport {
    /// Cases executed.
    pub cases: usize,
    /// Failures, shrunk and replayable.
    pub failures: Vec<CrashFailure>,
}

impl CrashReport {
    /// Whether every recovery was bit-identical.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `count` generated crash cases starting at `start_seed`, shrinking
/// every failure. `progress` sees each case after it ran.
pub fn crash_corpus(
    start_seed: u64,
    count: usize,
    quick: bool,
    mut progress: impl FnMut(&CrashCase, Option<&CaseFailure>),
) -> CrashReport {
    let mut report = CrashReport::default();
    for seed in start_seed..start_seed + count as u64 {
        let case = CrashCase::generate(seed, quick);
        let failure = case.run();
        report.cases += 1;
        progress(&case, failure.as_ref());
        if failure.is_some() {
            let shrunk = shrink_crash(case);
            let failure = shrunk
                .run()
                .expect("a shrunken case must still reproduce its failure");
            report.failures.push(CrashFailure {
                case,
                shrunk,
                failure,
            });
        }
    }
    report
}

/// Truncate the log at a deterministic byte inside its final record.
fn tear_final_record(path: &PathBuf, seed: u64) -> Result<(), String> {
    let data = std::fs::read(path).map_err(|e| format!("tear read: {e}"))?;
    if data.is_empty() {
        return Ok(());
    }
    let start = data[..data.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    let mut rng = RngStream::root(seed).derive("verify/crash/tear");
    // `start` drops the record whole; anything past it leaves a torn
    // prefix the parser must refuse.
    let cut = rng.gen_range(start..data.len());
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("tear open: {e}"))?;
    f.set_len(cut as u64).map_err(|e| format!("tear: {e}"))?;
    Ok(())
}

/// Drop the one metric family measured against the host wall clock;
/// everything else must reproduce byte-for-byte (tests/serve_golden.rs
/// draws the same line).
fn sim_deterministic_metrics(text: &str) -> String {
    text.lines()
        .filter(|l| !l.contains("ga_generation_wall_us"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn first_diff(what: &str, a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("{what}: `{la}` vs `{lb}`");
        }
    }
    format!(
        "{what}: {} vs {} lines",
        a.lines().count(),
        b.lines().count()
    )
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named WAL file in the system temp dir, deleted on drop.
struct TempWal {
    path: PathBuf,
}

impl TempWal {
    fn new(tag: &str) -> TempWal {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "agentgrid-crash-{}-{n}-{tag}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        TempWal { path }
    }

    fn config(&self) -> WalConfig {
        WalConfig {
            path: self.path.to_string_lossy().into_owned(),
            sync: SyncPolicy::Off,
        }
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_kill_points_vary() {
        let mut kills = std::collections::HashSet::new();
        let mut torn = 0;
        for seed in 0..20 {
            let a = CrashCase::generate(seed, true);
            assert_eq!(a, CrashCase::generate(seed, true));
            assert!(a.kill_after <= a.fuzz.lines().len());
            kills.insert(a.kill_after);
            torn += a.tear as usize;
        }
        assert!(kills.len() > 3, "kill points must spread: {kills:?}");
        assert!(torn > 0, "some cases must tear the log tail");
    }

    #[test]
    fn a_small_crash_corpus_recovers_bit_identically() {
        let report = crash_corpus(0, 4, true, |_, _| {});
        assert_eq!(report.cases, 4);
        assert!(
            report.is_clean(),
            "crash corpus failed: {:?}",
            report.failures
        );
    }
}
