//! The seeded simulation fuzzer with shrinking.
//!
//! [`FuzzCase::generate`] derives a random-but-reproducible scenario —
//! topology size, processor count, workload length, experiment design
//! and a crash plan — entirely from one seed. [`FuzzCase::run`] executes
//! it under an [`InvariantRecorder`] and reports the first of:
//!
//! - a **panic** anywhere in the stack (debug assertions included —
//!   `cargo test` and `cargo run` are debug builds, so the internal
//!   counter-consistency and completion-instant checks are live);
//! - an **invariant violation** from the recorder (exactly-once
//!   completion, freetime soundness, GA legitimacy, …);
//! - a **task-accounting mismatch** (completed + rejected ≠ requested),
//!   which also catches exactly-once bugs in release builds where the
//!   debug assertions are compiled out.
//!
//! When a case fails, [`shrink`] greedily reduces it — fewer requests,
//! fewer resources, fewer processors, fewer crashes — re-running each
//! candidate and keeping it only if it still fails, until no smaller
//! failing neighbour exists. The result is printed as a ready-to-paste
//! regression test line (see [`FuzzCase::regression_line`]).
//!
//! A hard step limit guards every fuzz run: a livelocked simulation
//! panics with a clear message instead of hanging the fuzzer.

use agentgrid::{run_experiment, FaultPlan, RunOptions};
use agentgrid_cluster::ExecEnv;
use agentgrid_sim::{RngStream, SimDuration, SimTime};
use agentgrid_telemetry::{InvariantRecorder, Telemetry, Violation};
use agentgrid_workload::{ExperimentDesign, GridTopology, PolicyKind, WorkloadConfig};
use rand::Rng;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Hard cap on delivered simulation events per fuzz case.
const STEP_LIMIT: u64 = 2_000_000;

/// One self-contained fuzz scenario. Every field is data, so a failing
/// case can be pasted verbatim into a regression test and replayed
/// forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// Seed for the workload, the GA and (when `crashes > 0`) the fault
    /// plan.
    pub seed: u64,
    /// Grid resources in a flat topology.
    pub resources: usize,
    /// Processors per resource.
    pub nproc: usize,
    /// Workload length (1-second interarrival).
    pub requests: usize,
    /// Crash/restart pairs in the fault plan (0 = chaos-free, checked
    /// in [`CheckMode::Strict`](agentgrid_telemetry::CheckMode)).
    pub crashes: usize,
    /// Table 2 experiment design (1 = FIFO local, 2 = GA local,
    /// 3 = GA + agents). Crashy cases always use design 3 — discovery
    /// and retry are the supported recovery path.
    pub design: u8,
    /// Test-only: disable the grid's completion-dedup protections so
    /// the fuzzer can prove it catches a real exactly-once violation.
    pub sabotage: bool,
    /// Agent-subtree shards the event loop runs over (DESIGN.md §13;
    /// 1 = plain sequential loop). Results must be invariant in this,
    /// so the fuzzer varies it like any other dimension — and shrinking
    /// tries `1` first, separating genuine scheduling bugs from
    /// merge-barrier bugs.
    pub shards: usize,
    /// Local scheduling policy for designs 2/3 (design 1 is FIFO by
    /// definition) — any zoo entrant. Shrinking tries FIFO first,
    /// separating policy-specific bugs from grid-layer bugs. Drawn
    /// last so pasted regression lines from earlier corpora stay
    /// readable prefixes.
    pub policy: PolicyKind,
}

/// Why a case failed.
#[derive(Clone, Debug)]
pub enum CaseFailure {
    /// The stack panicked (assertion, debug assertion, or livelock
    /// step-limit trip).
    Panic(String),
    /// The invariant recorder flagged the event stream.
    Violations(Vec<Violation>),
    /// Completed + rejected did not add up to the requests submitted.
    Accounting(String),
}

impl fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseFailure::Panic(msg) => write!(f, "panic: {msg}"),
            CaseFailure::Violations(vs) => {
                write!(f, "{} invariant violation(s); first: {}", vs.len(), vs[0])
            }
            CaseFailure::Accounting(msg) => write!(f, "task accounting: {msg}"),
        }
    }
}

/// The result of running one case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// `None` = the run upheld every invariant.
    pub failure: Option<CaseFailure>,
    /// Telemetry events the recorder checked (sanity: > 0 on any run).
    pub events: u64,
}

impl FuzzCase {
    /// Derive a scenario from `seed` alone. `quick` bounds the sizes for
    /// smoke-test budgets (CI); the same `(seed, quick)` always yields
    /// the same case.
    pub fn generate(seed: u64, quick: bool) -> FuzzCase {
        let mut rng = RngStream::root(seed).derive("verify/fuzz");
        let resources = rng.gen_range(1..=if quick { 3 } else { 4 });
        let nproc = rng.gen_range(1..=4);
        let requests = rng.gen_range(3..=if quick { 8 } else { 16 });
        // Half the corpus is chaos-free and checked strictly.
        let crashes = if rng.gen_range(0..2) == 0 {
            0
        } else {
            rng.gen_range(1..=3)
        };
        let design = if crashes > 0 {
            3
        } else {
            [1u8, 2, 3][rng.gen_range(0..3usize)]
        };
        // Drawn after the earlier dimensions so they reproduce earlier
        // corpora.
        let shards = [1usize, 2, 4][rng.gen_range(0..3usize)];
        // Drawn last (newest dimension): the local policy for designs
        // 2/3. Design 1 is FIFO by definition and draws nothing.
        let policy = if design == 1 {
            PolicyKind::Fifo
        } else {
            PolicyKind::ALL[rng.gen_range(0..PolicyKind::ALL.len())]
        };
        FuzzCase {
            seed,
            resources,
            nproc,
            requests,
            crashes,
            design,
            sabotage: false,
            shards,
            policy,
        }
    }

    /// Whether the run needs the tolerant chaos checking mode.
    fn is_chaotic(&self) -> bool {
        self.crashes > 0 || self.sabotage
    }

    /// Execute the scenario under an invariant recorder.
    pub fn run(&self) -> CaseOutcome {
        let recorder = Arc::new(if self.is_chaotic() {
            InvariantRecorder::chaos()
        } else {
            InvariantRecorder::strict()
        });
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| self.execute(&recorder)));
        let failure = match outcome {
            Err(payload) => Some(CaseFailure::Panic(panic_message(&*payload))),
            Ok(summary) => {
                if !recorder.is_clean() {
                    Some(CaseFailure::Violations(recorder.violations()))
                } else if summary.completed + summary.rejected != summary.requests {
                    Some(CaseFailure::Accounting(format!(
                        "{} completed + {} rejected != {} requested",
                        summary.completed, summary.rejected, summary.requests
                    )))
                } else {
                    None
                }
            }
        };
        CaseOutcome {
            failure,
            events: recorder.events_seen(),
        }
    }

    fn execute(&self, recorder: &Arc<InvariantRecorder>) -> RunSummary {
        let topology = GridTopology::flat(self.resources, self.nproc);
        let workload = WorkloadConfig {
            requests: self.requests,
            interarrival: SimDuration::from_secs(1),
            seed: self.seed,
            agents: topology.names(),
            environment: ExecEnv::Test,
        };
        let mut design = match self.design {
            1 => ExperimentDesign::experiment1(),
            2 => ExperimentDesign::experiment2(),
            _ => ExperimentDesign::experiment3(),
        };
        if self.design != 1 {
            design.local_policy = self.policy;
        }
        let mut opts = RunOptions::fast();
        opts.telemetry = Telemetry::new(recorder.clone());
        opts.step_limit = Some(STEP_LIMIT);
        opts.shards = self.shards.max(1);
        opts.shard_workers = Some(2);
        if self.crashes > 0 {
            // The proven recovery envelope (tests/chaos.rs): every crash
            // restarts, retries outlast outages, stale ACT entries age out.
            let horizon = SimTime::from_secs(20 + 2 * self.requests as u64);
            opts.chaos = FaultPlan::random(
                self.seed,
                &topology.names(),
                horizon,
                self.crashes,
                SimDuration::from_secs(10),
            )
            .with_act_ttl(SimDuration::from_secs(30))
            .with_dispatch_timeout(SimDuration::from_secs(2))
            .with_max_retries(24);
        }
        opts.chaos.sabotage_dedup = self.sabotage;
        let r = run_experiment(&design, &topology, &workload, &opts);
        RunSummary {
            requests: r.requests,
            completed: r.total.tasks,
            rejected: r.rejected,
        }
    }

    /// A ready-to-paste regression test line.
    pub fn regression_line(&self) -> String {
        format!("let case = {self:?}; case.assert_fails();")
    }

    /// Assert the case fails and return why (for pasted regressions).
    ///
    /// # Panics
    /// If the case runs clean.
    pub fn assert_fails(&self) -> CaseFailure {
        self.run()
            .failure
            .unwrap_or_else(|| panic!("expected {self:?} to fail, but it ran clean"))
    }

    /// Assert the case upholds every invariant.
    ///
    /// # Panics
    /// If the case fails, with the failure in the message.
    pub fn assert_clean(&self) {
        if let Some(f) = self.run().failure {
            panic!("expected {self:?} to run clean, but: {f}");
        }
    }
}

struct RunSummary {
    requests: usize,
    completed: usize,
    rejected: usize,
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Greedily minimise a failing case: try fewer requests (halving first),
/// fewer resources, fewer processors, fewer crashes; keep any candidate
/// that still fails and repeat to a fixpoint. Every candidate is a full
/// re-run, so the shrunken case is *known* to reproduce the failure.
pub fn shrink(case: FuzzCase) -> FuzzCase {
    let mut best = case;
    loop {
        let mut candidates = Vec::new();
        // Try FIFO first: if the failure survives under the simplest
        // policy it is a grid-layer bug, not a policy-specific one.
        if best.policy != PolicyKind::Fifo {
            candidates.push(FuzzCase {
                policy: PolicyKind::Fifo,
                ..best
            });
        }
        // Then the sequential loop: if the failure survives at
        // shards = 1 it is a scheduling bug, not a merge-barrier bug.
        if best.shards > 1 {
            candidates.push(FuzzCase { shards: 1, ..best });
        }
        if best.requests > 1 {
            candidates.push(FuzzCase {
                requests: best.requests / 2,
                ..best
            });
            candidates.push(FuzzCase {
                requests: best.requests - 1,
                ..best
            });
        }
        if best.resources > 1 {
            candidates.push(FuzzCase {
                resources: best.resources - 1,
                ..best
            });
        }
        if best.nproc > 1 {
            candidates.push(FuzzCase {
                nproc: best.nproc - 1,
                ..best
            });
        }
        if best.crashes > 1 {
            candidates.push(FuzzCase {
                crashes: best.crashes - 1,
                ..best
            });
        }
        candidates.dedup();
        match candidates.into_iter().find(|c| c.run().failure.is_some()) {
            Some(c) => best = c,
            None => return best,
        }
    }
}

/// One corpus failure: the original case, its shrunken form, and the
/// shrunken form's failure.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The case as generated.
    pub case: FuzzCase,
    /// Its minimal failing neighbour.
    pub shrunk: FuzzCase,
    /// Why the shrunken case fails.
    pub failure: CaseFailure,
}

/// A whole corpus run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Telemetry events checked across the corpus.
    pub events: u64,
    /// Failures, shrunk and replayable.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether the whole corpus upheld every invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `count` generated cases starting at `start_seed`, shrinking every
/// failure. `progress` sees each case after it ran (its failure, if
/// any, before shrinking).
pub fn fuzz_corpus(
    start_seed: u64,
    count: usize,
    quick: bool,
    progress: impl FnMut(&FuzzCase, Option<&CaseFailure>),
) -> FuzzReport {
    fuzz_corpus_with(start_seed, count, quick, None, None, progress)
}

/// [`fuzz_corpus`] with every case's shard count overridden (the
/// `verify fuzz --shards N` dimension). Re-running an identical corpus
/// at different shard counts must produce identical verdicts: any
/// difference is a merge-barrier bug.
pub fn fuzz_corpus_sharded(
    start_seed: u64,
    count: usize,
    quick: bool,
    shards: Option<usize>,
    progress: impl FnMut(&FuzzCase, Option<&CaseFailure>),
) -> FuzzReport {
    fuzz_corpus_with(start_seed, count, quick, shards, None, progress)
}

/// The fully-parameterised corpus runner: optional shard and policy
/// overrides applied to every generated case (the `verify fuzz
/// --shards N` and `--policy P` dimensions). A policy override pins
/// designs 2/3 to one zoo entrant so a whole corpus can stress a single
/// policy; design-1 cases are FIFO by definition and ignore it.
pub fn fuzz_corpus_with(
    start_seed: u64,
    count: usize,
    quick: bool,
    shards: Option<usize>,
    policy: Option<PolicyKind>,
    mut progress: impl FnMut(&FuzzCase, Option<&CaseFailure>),
) -> FuzzReport {
    let mut report = FuzzReport::default();
    for seed in start_seed..start_seed + count as u64 {
        let mut case = FuzzCase::generate(seed, quick);
        if let Some(s) = shards {
            case.shards = s.max(1);
        }
        if let Some(p) = policy {
            if case.design != 1 {
                case.policy = p;
            }
        }
        let outcome = case.run();
        report.cases += 1;
        report.events += outcome.events;
        progress(&case, outcome.failure.as_ref());
        if outcome.failure.is_some() {
            let shrunk = shrink(case);
            let failure = shrunk.assert_fails();
            report.failures.push(FuzzFailure {
                case,
                shrunk,
                failure,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_bounded() {
        for seed in 0..40 {
            let a = FuzzCase::generate(seed, true);
            assert_eq!(a, FuzzCase::generate(seed, true));
            assert!((1..=3).contains(&a.resources));
            assert!((1..=4).contains(&a.nproc));
            assert!((3..=8).contains(&a.requests));
            assert!(a.crashes <= 3);
            if a.crashes > 0 {
                assert_eq!(a.design, 3, "crashy cases use the recovery path");
            }
            assert!(!a.sabotage);
            assert!(matches!(a.shards, 1 | 2 | 4));
            if a.design == 1 {
                assert_eq!(a.policy, PolicyKind::Fifo, "design 1 is FIFO by definition");
            }
        }
        // Both strict and chaotic cases appear in the corpus, both
        // sequential and sharded loops get exercised, and the policy
        // dimension actually varies beyond FIFO/GA.
        let cases: Vec<_> = (0..40).map(|s| FuzzCase::generate(s, true)).collect();
        assert!(cases.iter().any(|c| c.crashes == 0));
        assert!(cases.iter().any(|c| c.crashes > 0));
        assert!(cases.iter().any(|c| c.shards == 1));
        assert!(cases.iter().any(|c| c.shards > 1));
        let distinct: std::collections::HashSet<_> = cases.iter().map(|c| c.policy).collect();
        assert!(
            distinct.len() >= 3,
            "expected ≥3 distinct policies in 40 cases, got {distinct:?}"
        );
    }

    #[test]
    fn policy_override_pins_planned_designs_only() {
        let mut pinned = 0;
        fuzz_corpus_with(0, 6, true, None, Some(PolicyKind::Sufferage), |c, f| {
            assert!(f.is_none(), "override corpus failed on {c:?}");
            if c.design != 1 {
                assert_eq!(c.policy, PolicyKind::Sufferage);
                pinned += 1;
            } else {
                assert_eq!(c.policy, PolicyKind::Fifo);
            }
        });
        assert!(pinned > 0, "no planned-design case in the first 6 seeds");
    }

    #[test]
    fn a_small_corpus_runs_clean() {
        let report = fuzz_corpus(0, 4, true, |_, _| {});
        assert_eq!(report.cases, 4);
        assert!(report.events > 0, "the recorder must actually see events");
        assert!(
            report.is_clean(),
            "clean corpus failed: {:?}",
            report.failures
        );
    }

    #[test]
    fn regression_line_is_pasteable() {
        let case = FuzzCase::generate(7, true);
        let line = case.regression_line();
        assert!(line.starts_with("let case = FuzzCase { seed: 7,"));
        assert!(line.ends_with("case.assert_fails();"));
    }
}
