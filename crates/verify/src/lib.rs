//! # agentgrid-verify
//!
//! Verification harness for the agentgrid stack: model-based oracles,
//! online invariant checking, and a shrinking simulation fuzzer.
//!
//! The rest of the workspace asserts what the *implementation* does;
//! this crate asserts what the *model* says it should do, by
//! independent means:
//!
//! - [`oracle`] — brute-force reference schedulers for tiny instances.
//!   [`oracle::brute_force_best`] enumerates every ordering × node-mask
//!   assignment, bounding the GA's cost from below;
//!   [`oracle::fifo_reference`] rebuilds the arrival-order greedy
//!   schedule, bounding it from above (the GA seeds its population with
//!   exactly that schedule); [`oracle::matchmaking_reference`]
//!   re-derives eq. 10's completion estimate.
//! - [`invariant`] — the online checker. [`InvariantRecorder`] is a
//!   telemetry sink validating event streams live: exactly-once
//!   completion (even under chaos), causal submit→start→finish order,
//!   freetime/ledger soundness, horizon consistency and GA solution
//!   legitimacy. It lives in `agentgrid-telemetry` (re-exported here)
//!   so the `agentgrid run --verify` CLI can attach it without a
//!   dependency cycle.
//! - [`fuzz`] — seeded random topologies × workloads × fault plans run
//!   under the checker, with greedy shrinking to a minimal replayable
//!   case printed as a ready-to-paste regression test.
//! - [`serve_fuzz`] — the serve-mode sibling: random JSONL request
//!   streams plus elasticity directives pushed through the live
//!   injection path (`verify fuzz --serve`).
//! - [`crash`] — kill-at-random-point durability fuzzing: a served
//!   session with a write-ahead log is killed mid-stream (optionally
//!   with a torn log tail), recovered, and required to finish
//!   bit-identical to an uninterrupted run (`verify fuzz --crash`).
//!
//! The `verify` binary drives the fuzzer from the command line:
//! `cargo run --bin verify -- fuzz --seeds 100 --quick`.

#![warn(missing_docs)]

pub mod crash;
pub mod fuzz;
pub mod oracle;
pub mod serve_fuzz;
pub mod zoo;

/// The online invariant checker (re-exported from
/// `agentgrid-telemetry`, where it lives so every layer — including the
/// `agentgrid` CLI — can attach it).
pub mod invariant {
    pub use agentgrid_telemetry::invariant::{CheckMode, InvariantRecorder, Violation};
}

pub use crash::{crash_corpus, shrink_crash, CrashCase, CrashFailure, CrashReport};
pub use fuzz::{
    fuzz_corpus, fuzz_corpus_sharded, shrink, CaseFailure, CaseOutcome, FuzzCase, FuzzFailure,
    FuzzReport,
};
pub use invariant::{CheckMode, InvariantRecorder, Violation};
pub use oracle::{
    brute_force_best, cost_of, fifo_reference, matchmaking_reference, OracleSchedule,
};
pub use serve_fuzz::{
    serve_fuzz_corpus, shrink_serve, ServeFuzzCase, ServeFuzzFailure, ServeFuzzReport,
};
pub use zoo::{diff_ga_config, diff_instance, planned_zoo, DiffInstance};
