//! Model-based reference oracles.
//!
//! Each oracle recomputes an answer the production code also computes,
//! by an independent (usually brute-force) method, so differential
//! tests can bound the real implementation from both sides:
//!
//! - [`brute_force_best`] — the true optimum of the GA's cost function
//!   over *every* ordering × node-mask assignment of a tiny instance.
//!   The GA can never beat it, so `ga_cost >= brute_cost` (ties
//!   allowed) on any instance the oracle can afford.
//! - [`fifo_reference`] — the arrival-order greedy schedule the FIFO
//!   baseline produces, built from the exhaustive per-task allocation
//!   search. The GA injects exactly this schedule as a heuristic seed,
//!   so `ga_cost <= fifo_cost` as well.
//! - [`matchmaking_reference`] — eq. 10's completion estimate
//!   (freetime + best predicted time over all processor counts),
//!   re-derived with a plain minimisation loop rather than the cached
//!   [`CachedEngine::best_time`] path.
//!
//! All oracles are *slow on purpose*: clarity over speed, so they stay
//! trustworthy.

use agentgrid_cluster::NodeMask;
use agentgrid_pace::{ApplicationModel, CachedEngine, ResourceModel};
use agentgrid_scheduler::fifo::best_allocation_exhaustive;
use agentgrid_scheduler::{decode, CostWeights, ResourceView, ScheduleCost, Solution, Task};
use agentgrid_sim::{SimDuration, SimTime};

/// An oracle's best schedule: its combined cost, the solution achieving
/// it, and how many candidates were evaluated to find it.
#[derive(Clone, Debug)]
pub struct OracleSchedule {
    /// Combined eq. 8 cost of the schedule (lower is better).
    pub cost: f64,
    /// The (order, mapping) pair achieving it.
    pub solution: Solution,
    /// Candidate schedules evaluated.
    pub evaluated: u64,
}

/// Evaluate one candidate solution exactly as the GA does.
pub fn cost_of(
    view: &ResourceView,
    tasks: &[Task],
    solution: &Solution,
    engine: &CachedEngine,
    weights: &CostWeights,
) -> f64 {
    let schedule = decode(view, tasks, solution, engine);
    ScheduleCost::of(&schedule, weights).combined(weights)
}

/// The true optimum of the combined cost function over every ordering
/// permutation × non-empty node mask assignment.
///
/// The search space is `m! * (2^n - 1)^m` decodes, so instances must be
/// tiny: at most 5 tasks and 4 processors (asserted), and callers
/// should keep `m! * (2^n - 1)^m` in the tens of thousands (e.g. 5
/// tasks on 2 nodes, 4 on 3, 3 on 4).
///
/// # Panics
/// If the instance exceeds 5 tasks or 4 processors, or is empty.
pub fn brute_force_best(
    view: &ResourceView,
    tasks: &[Task],
    engine: &CachedEngine,
    weights: &CostWeights,
) -> OracleSchedule {
    let m = tasks.len();
    let nproc = view.model.nproc;
    assert!(
        (1..=5).contains(&m),
        "brute force needs 1..=5 tasks, got {m}"
    );
    assert!(
        (1..=4).contains(&nproc),
        "brute force needs 1..=4 processors, got {nproc}"
    );

    let masks: Vec<NodeMask> = (1..(1u32 << nproc)).map(NodeMask).collect();
    let orders = permutations(m);

    let mut best: Option<OracleSchedule> = None;
    let mut evaluated = 0u64;
    // Odometer over per-task mask choices, restarted per ordering.
    let mut candidate = Solution {
        order: Vec::new(),
        mapping: vec![masks[0]; m],
    };
    for order in &orders {
        candidate.order = order.clone();
        let mut digits = vec![0usize; m];
        loop {
            for (slot, &d) in candidate.mapping.iter_mut().zip(&digits) {
                *slot = masks[d];
            }
            let cost = cost_of(view, tasks, &candidate, engine, weights);
            evaluated += 1;
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(OracleSchedule {
                    cost,
                    solution: candidate.clone(),
                    evaluated: 0,
                });
            }
            // Advance the odometer; carry past the last digit ends this
            // ordering.
            let mut i = 0;
            loop {
                if i == m {
                    break;
                }
                digits[i] += 1;
                if digits[i] < masks.len() {
                    break;
                }
                digits[i] = 0;
                i += 1;
            }
            if i == m {
                break;
            }
        }
    }
    let mut best = best.expect("at least one candidate");
    best.evaluated = evaluated;
    best
}

/// The arrival-order greedy schedule of the FIFO baseline: each task in
/// submission order takes the allocation minimising its own completion
/// (exhaustive over every non-empty subset of available nodes), with
/// ties broken towards fewer nodes then lower mask bits — the same
/// rule [`FifoPolicy`](agentgrid_scheduler::FifoPolicy) applies.
pub fn fifo_reference(
    view: &ResourceView,
    tasks: &[Task],
    engine: &CachedEngine,
    weights: &CostWeights,
) -> OracleSchedule {
    let mut node_free = view.node_free.clone();
    let mut mapping = Vec::with_capacity(tasks.len());
    for task in tasks {
        let alloc = best_allocation_exhaustive(
            &node_free,
            view.available,
            view.now,
            &task.app,
            &view.model,
            engine,
        );
        for node in alloc.mask.iter() {
            node_free[node] = alloc.completion;
        }
        mapping.push(alloc.mask);
    }
    let solution = Solution {
        order: (0..tasks.len()).collect(),
        mapping,
    };
    let cost = cost_of(view, tasks, &solution, engine, weights);
    OracleSchedule {
        cost,
        solution,
        evaluated: tasks.len() as u64,
    }
}

/// Eq. 10's completion estimate, re-derived independently: advertised
/// freetime (clamped to now) plus the minimum predicted execution time
/// over every processor count `1..=nproc`, taking the lowest count on
/// ties exactly as the production tie-break does.
pub fn matchmaking_reference(
    freetime: SimTime,
    now: SimTime,
    app: &ApplicationModel,
    model: &ResourceModel,
    engine: &CachedEngine,
) -> SimTime {
    let mut best = f64::INFINITY;
    for k in 1..=model.nproc {
        let t = engine.evaluate(app, model, k);
        if t < best {
            best = t;
        }
    }
    freetime.max(now) + SimDuration::from_secs_f64(best)
}

/// All permutations of `0..m` in a deterministic order.
fn permutations(m: usize) -> Vec<Vec<usize>> {
    fn recurse(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            recurse(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    let mut out = Vec::new();
    recurse(&mut Vec::new(), &mut (0..m).collect(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_cluster::{ExecEnv, GridResource};
    use agentgrid_pace::{AppId, ModelCurve, Platform, TabulatedModel};
    use agentgrid_scheduler::{Task, TaskId};
    use std::sync::Arc;

    fn app(id: u32, times: Vec<f64>) -> Arc<ApplicationModel> {
        Arc::new(
            ApplicationModel::new(
                AppId(id),
                "t",
                ModelCurve::Tabulated(TabulatedModel::new(times).unwrap()),
                (1.0, 1000.0),
            )
            .unwrap(),
        )
    }

    fn task(id: u64, app: Arc<ApplicationModel>, deadline_s: u64) -> Task {
        Task::new(
            TaskId(id),
            app,
            SimTime::ZERO,
            SimTime::from_secs(deadline_s),
            ExecEnv::Test,
        )
    }

    fn view(nproc: usize) -> ResourceView {
        let r = GridResource::new("S1", Platform::sgi_origin2000(), nproc);
        ResourceView::snapshot(&r, SimTime::ZERO).unwrap()
    }

    #[test]
    fn permutations_cover_the_factorial() {
        assert_eq!(permutations(1), vec![vec![0]]);
        let p3 = permutations(3);
        assert_eq!(p3.len(), 6);
        let p4 = permutations(4);
        assert_eq!(p4.len(), 24);
        // All distinct.
        for (i, a) in p4.iter().enumerate() {
            for b in &p4[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn brute_force_finds_the_obvious_optimum() {
        // One task that parallelises perfectly on 2 nodes: the optimum
        // must grab both.
        let engine = CachedEngine::new();
        let v = view(2);
        let a = app(1000, vec![10.0, 5.0]);
        let tasks = vec![task(0, a, 60)];
        let best = brute_force_best(&v, &tasks, &engine, &CostWeights::default());
        assert_eq!(best.evaluated, 3); // 1! * (2^2 - 1)
        assert_eq!(best.solution.mapping[0].count(), 2);
    }

    #[test]
    fn brute_force_never_beaten_by_any_candidate() {
        let engine = CachedEngine::new();
        let v = view(2);
        let a = app(1001, vec![8.0, 5.0]);
        let b = app(1002, vec![3.0, 2.9]);
        let tasks = vec![task(0, a.clone(), 30), task(1, b, 30), task(2, a, 90)];
        let w = CostWeights::default();
        let best = brute_force_best(&v, &tasks, &engine, &w);
        assert_eq!(best.evaluated, 6 * 27); // 3! * (2^2 - 1)^3
                                            // Spot-check a few hand-built candidates.
        for order in [vec![0, 1, 2], vec![2, 1, 0]] {
            for mask in [NodeMask(0b01), NodeMask(0b11)] {
                let cand = Solution {
                    order: order.clone(),
                    mapping: vec![mask; 3],
                };
                let c = cost_of(&v, &tasks, &cand, &engine, &w);
                assert!(c >= best.cost - 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "brute force needs 1..=5 tasks")]
    fn brute_force_rejects_oversized_instances() {
        let engine = CachedEngine::new();
        let v = view(2);
        let a = app(1003, vec![1.0]);
        let tasks: Vec<Task> = (0..6).map(|i| task(i, a.clone(), 60)).collect();
        brute_force_best(&v, &tasks, &engine, &CostWeights::default());
    }

    #[test]
    fn fifo_reference_is_bounded_by_the_optimum() {
        let engine = CachedEngine::new();
        let v = view(3);
        let a = app(1004, vec![9.0, 5.0, 4.0]);
        let b = app(1005, vec![2.0, 1.5, 1.4]);
        let tasks = vec![task(0, a, 30), task(1, b.clone(), 30), task(2, b, 40)];
        let w = CostWeights::default();
        let fifo = fifo_reference(&v, &tasks, &engine, &w);
        let best = brute_force_best(&v, &tasks, &engine, &w);
        assert!(
            fifo.cost >= best.cost - 1e-12,
            "greedy {} beat the optimum {}",
            fifo.cost,
            best.cost
        );
        assert!(fifo.solution.is_legitimate(3, 3));
    }

    #[test]
    fn matchmaking_reference_tracks_best_time() {
        // The cached best_time and the independent loop must agree.
        let engine = CachedEngine::new();
        let model = ResourceModel::new(Platform::sgi_origin2000(), 4).unwrap();
        let a = app(1006, vec![10.0, 6.0, 4.5, 4.4]);
        let now = SimTime::from_secs(3);
        let freetime = SimTime::from_secs(7);
        let est = matchmaking_reference(freetime, now, &a, &model, &engine);
        let (_, best_s) = engine.best_time(&a, &model);
        assert_eq!(
            est,
            freetime + SimDuration::from_secs_f64(best_s),
            "oracle and cached path disagree"
        );
        // A stale freetime clamps to now.
        let est2 = matchmaking_reference(SimTime::ZERO, now, &a, &model, &engine);
        assert_eq!(est2, now + SimDuration::from_secs_f64(best_s));
    }
}
