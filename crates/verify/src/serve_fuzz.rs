//! Fuzzing the serve loop: random JSONL request streams plus elasticity
//! directives, pushed through [`GridService::run_scripted`] — the
//! deterministic live-injection drive mode — under the online
//! [`InvariantRecorder`](agentgrid_telemetry::InvariantRecorder).
//!
//! This is the serve-mode sibling of [`fuzz`](crate::fuzz): where that
//! module exercises the batch driver, this one exercises runtime
//! ingestion (`GridSystem::inject_request`), runtime elasticity
//! (`GridSystem::schedule_scale` → graceful drain and re-place), idle
//! chain revival, and optionally the online tuner. Failures shrink the
//! same way — fewer requests, fewer scale cycles, fewer resources — to
//! a minimal replayable case.

use crate::fuzz::CaseFailure;
use agentgrid::{FaultPlan, RunOptions};
use agentgrid_serve::{GridService, ServeConfig, ServeLine, TunerConfig};
use agentgrid_sim::{RngStream, SimDuration, SimTime};
use agentgrid_workload::{ExperimentDesign, GridTopology, WorkloadConfig};
use rand::Rng;
use std::panic::{self, AssertUnwindSafe};

/// Hard cap on delivered simulation events per serve fuzz case.
const STEP_LIMIT: u64 = 2_000_000;

/// One self-contained serve-mode fuzz scenario, fully determined by its
/// fields — paste a failing `Debug` print into a regression test and it
/// replays forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeFuzzCase {
    /// Seed for the workload, the GA and the scale-cycle draws.
    pub seed: u64,
    /// Grid resources in a flat topology.
    pub resources: usize,
    /// Processors per resource.
    pub nproc: usize,
    /// Requests injected live through the serve loop.
    pub requests: usize,
    /// Graceful scale-down/scale-up cycles injected as directives
    /// (0 = no elasticity; the stream is checked strictly).
    pub scales: usize,
    /// Table 2 experiment design; elastic cases always use design 3 —
    /// discovery and retry are the supported re-placement path.
    pub design: u8,
    /// Attach the online tuner, so its knob turns run under the checker
    /// too.
    pub tune: bool,
}

impl ServeFuzzCase {
    /// Derive a scenario from `seed` alone; `quick` bounds the sizes for
    /// CI smoke budgets. Same `(seed, quick)`, same case.
    pub fn generate(seed: u64, quick: bool) -> ServeFuzzCase {
        let mut rng = RngStream::root(seed).derive("verify/serve-fuzz");
        let resources = rng.gen_range(1..=if quick { 3 } else { 4 });
        let nproc = rng.gen_range(1..=4);
        let requests = rng.gen_range(3..=if quick { 8 } else { 16 });
        // Half the corpus is elasticity-free and checked strictly.
        let scales = if rng.gen_range(0..2) == 0 {
            0
        } else {
            rng.gen_range(1..=2)
        };
        let design = if scales > 0 {
            3
        } else {
            [1u8, 2, 3][rng.gen_range(0..3usize)]
        };
        let tune = rng.gen_range(0..4) == 0;
        ServeFuzzCase {
            seed,
            resources,
            nproc,
            requests,
            scales,
            design,
            tune,
        }
    }

    /// The JSONL stream this case serves: the seeded workload as request
    /// lines, interleaved with `scales` down→up cycles on seed-chosen
    /// resources. Cycles always close (every leave is followed by a
    /// rejoin) so queued work can never be stranded past the horizon.
    pub fn lines(&self) -> Vec<ServeLine> {
        let topology = GridTopology::flat(self.resources, self.nproc);
        let workload = WorkloadConfig {
            requests: self.requests,
            interarrival: SimDuration::from_secs(1),
            seed: self.seed,
            agents: topology.names(),
            environment: agentgrid_cluster::ExecEnv::Test,
        };
        let mut lines: Vec<ServeLine> = workload
            .generate(&RunOptions::fast().catalog)
            .into_iter()
            .map(ServeLine::Request)
            .collect();
        let names = topology.names();
        let mut rng = RngStream::root(self.seed).derive("verify/serve-fuzz/scales");
        let horizon = 2 * self.requests as u64 + 4;
        for _ in 0..self.scales {
            let resource = names[rng.gen_range(0..names.len())].clone();
            let down = rng.gen_range(1..=horizon);
            let up = down + rng.gen_range(1..=10);
            lines.push(ServeLine::Scale {
                at: SimTime::from_secs(down),
                resource: resource.clone(),
                up: false,
            });
            lines.push(ServeLine::Scale {
                at: SimTime::from_secs(up),
                resource,
                up: true,
            });
        }
        lines
    }

    /// Execute the stream through the scripted serve loop and classify
    /// the outcome exactly as the batch fuzzer does: panic, invariant
    /// violation, or task-accounting mismatch.
    pub fn run(&self) -> Option<CaseFailure> {
        self.run_counted().0
    }

    /// [`ServeFuzzCase::run`] plus the number of telemetry events the
    /// checker examined (0 when the case panicked before finishing).
    pub fn run_counted(&self) -> (Option<CaseFailure>, u64) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| self.execute()));
        match outcome {
            Err(payload) => (
                Some(CaseFailure::Panic(crate::fuzz::panic_message(&*payload))),
                0,
            ),
            Ok(Err(e)) => (
                Some(CaseFailure::Accounting(format!("serve error: {e}"))),
                0,
            ),
            Ok(Ok(summary)) => {
                let failure = if !summary.clean {
                    Some(CaseFailure::Accounting(format!(
                        "invariant violations:\n{}",
                        summary.verify_report
                    )))
                } else if summary.completed + summary.rejected != summary.requests {
                    Some(CaseFailure::Accounting(format!(
                        "{} completed + {} rejected != {} requested",
                        summary.completed, summary.rejected, summary.requests
                    )))
                } else {
                    None
                };
                (failure, summary.verify_events)
            }
        }
    }

    /// The `ServeConfig` this case runs under, with an optional WAL
    /// attached — the crash/recovery harness ([`crate::crash`]) builds
    /// the exact same grid around a write-ahead log.
    pub fn config(&self, wal: Option<agentgrid_serve::WalConfig>) -> ServeConfig {
        let topology = GridTopology::flat(self.resources, self.nproc);
        let design = match self.design {
            1 => ExperimentDesign::experiment1(),
            2 => ExperimentDesign::experiment2(),
            _ => ExperimentDesign::experiment3(),
        };
        let mut opts = RunOptions::fast();
        opts.step_limit = Some(STEP_LIMIT);
        if self.scales > 0 {
            // The proven recovery envelope (tests/chaos.rs): retries
            // outlast outages, stale ACT entries age out.
            opts.chaos = FaultPlan::none()
                .with_act_ttl(SimDuration::from_secs(30))
                .with_dispatch_timeout(SimDuration::from_secs(2))
                .with_max_retries(24);
        }
        ServeConfig {
            topology,
            design,
            opts,
            seed: self.seed,
            verify: true,
            tune: self.tune.then(|| TunerConfig {
                interval: SimDuration::from_secs(5),
                ..TunerConfig::default()
            }),
            wal,
            record: None,
        }
    }

    fn execute(&self) -> Result<ServeSummary, String> {
        let cfg = self.config(None);
        let report = GridService::run_scripted(&cfg, &self.lines())?;
        Ok(ServeSummary {
            requests: report.injected,
            completed: report.completed,
            rejected: report.result.rejected,
            clean: report.clean,
            verify_report: report.verify_report.unwrap_or_default(),
            verify_events: report.verify_events,
        })
    }

    /// A ready-to-paste regression test line.
    pub fn regression_line(&self) -> String {
        format!("let case = {self:?}; assert!(case.run().is_some());")
    }

    /// Assert the case upholds every invariant.
    ///
    /// # Panics
    /// If the case fails, with the failure in the message.
    pub fn assert_clean(&self) {
        if let Some(f) = self.run() {
            panic!("expected {self:?} to run clean, but: {f}");
        }
    }
}

struct ServeSummary {
    requests: usize,
    completed: usize,
    rejected: usize,
    clean: bool,
    verify_report: String,
    verify_events: u64,
}

/// Greedily minimise a failing serve case: fewer requests (halving
/// first), fewer scale cycles, fewer resources, fewer processors, no
/// tuner; keep any still-failing candidate and repeat to a fixpoint.
pub fn shrink_serve(case: ServeFuzzCase) -> ServeFuzzCase {
    let mut best = case;
    loop {
        let mut candidates = Vec::new();
        if best.requests > 1 {
            candidates.push(ServeFuzzCase {
                requests: best.requests / 2,
                ..best
            });
            candidates.push(ServeFuzzCase {
                requests: best.requests - 1,
                ..best
            });
        }
        if best.scales > 0 {
            candidates.push(ServeFuzzCase {
                scales: best.scales - 1,
                ..best
            });
        }
        if best.resources > 1 {
            candidates.push(ServeFuzzCase {
                resources: best.resources - 1,
                ..best
            });
        }
        if best.nproc > 1 {
            candidates.push(ServeFuzzCase {
                nproc: best.nproc - 1,
                ..best
            });
        }
        if best.tune {
            candidates.push(ServeFuzzCase {
                tune: false,
                ..best
            });
        }
        candidates.dedup();
        match candidates.into_iter().find(|c| c.run().is_some()) {
            Some(c) => best = c,
            None => return best,
        }
    }
}

/// One serve-corpus failure, shrunk and replayable.
#[derive(Clone, Debug)]
pub struct ServeFuzzFailure {
    /// The case as generated.
    pub case: ServeFuzzCase,
    /// Its minimal failing neighbour.
    pub shrunk: ServeFuzzCase,
    /// Why the shrunken case fails.
    pub failure: CaseFailure,
}

/// A whole serve-corpus run.
#[derive(Clone, Debug, Default)]
pub struct ServeFuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Telemetry events the checker examined across the corpus.
    pub events: u64,
    /// Failures, shrunk and replayable.
    pub failures: Vec<ServeFuzzFailure>,
}

impl ServeFuzzReport {
    /// Whether the whole corpus upheld every invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `count` generated serve cases starting at `start_seed`, shrinking
/// every failure. `progress` sees each case after it ran.
pub fn serve_fuzz_corpus(
    start_seed: u64,
    count: usize,
    quick: bool,
    mut progress: impl FnMut(&ServeFuzzCase, Option<&CaseFailure>),
) -> ServeFuzzReport {
    let mut report = ServeFuzzReport::default();
    for seed in start_seed..start_seed + count as u64 {
        let case = ServeFuzzCase::generate(seed, quick);
        let (failure, events) = case.run_counted();
        report.events += events;
        report.cases += 1;
        progress(&case, failure.as_ref());
        if failure.is_some() {
            let shrunk = shrink_serve(case);
            let failure = shrunk
                .run()
                .expect("a shrunken case must still reproduce its failure");
            report.failures.push(ServeFuzzFailure {
                case,
                shrunk,
                failure,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_bounded() {
        for seed in 0..40 {
            let a = ServeFuzzCase::generate(seed, true);
            assert_eq!(a, ServeFuzzCase::generate(seed, true));
            assert!((1..=3).contains(&a.resources));
            assert!((1..=4).contains(&a.nproc));
            assert!((3..=8).contains(&a.requests));
            assert!(a.scales <= 2);
            if a.scales > 0 {
                assert_eq!(a.design, 3, "elastic cases use the recovery path");
            }
        }
        let cases: Vec<_> = (0..40).map(|s| ServeFuzzCase::generate(s, true)).collect();
        assert!(cases.iter().any(|c| c.scales == 0));
        assert!(cases.iter().any(|c| c.scales > 0));
        assert!(cases.iter().any(|c| c.tune));
    }

    #[test]
    fn scale_cycles_always_close() {
        for seed in 0..20 {
            let case = ServeFuzzCase::generate(seed, true);
            let lines = case.lines();
            let downs = lines
                .iter()
                .filter(|l| matches!(l, ServeLine::Scale { up: false, .. }))
                .count();
            let ups = lines
                .iter()
                .filter(|l| matches!(l, ServeLine::Scale { up: true, .. }))
                .count();
            assert_eq!(downs, ups, "every leave must be paired with a rejoin");
            assert_eq!(downs, case.scales);
        }
    }

    #[test]
    fn a_small_serve_corpus_runs_clean() {
        let report = serve_fuzz_corpus(0, 4, true, |_, _| {});
        assert_eq!(report.cases, 4);
        assert!(report.events > 0, "the recorder must actually see events");
        assert!(
            report.is_clean(),
            "clean serve corpus failed: {:?}",
            report.failures
        );
    }
}
