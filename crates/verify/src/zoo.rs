//! Shared differential-test instrumentation for the scheduler zoo.
//!
//! Every planned policy (GA, the batch heuristics, simulated annealing)
//! must satisfy the same bracket on any instance:
//!
//! ```text
//! brute-force optimum  ≤  policy cost  ≤  FIFO arrival-order greedy
//! ```
//!
//! The lower bound holds because the policies minimise the same
//! combined cost the exhaustive search enumerates; the upper bound
//! holds by construction — every entrant either starts from or falls
//! back to the FIFO seed (see `agentgrid_scheduler::policy`). This
//! module provides the seeded tiny-instance generator and the zoo
//! roster so the verify tests and the tournament bench enforce the
//! identical bracket from one definition.

use agentgrid_cluster::{ExecEnv, GridResource};
use agentgrid_pace::{AppId, ApplicationModel, CachedEngine, ModelCurve, Platform, TabulatedModel};
use agentgrid_scheduler::{
    AnnealingPolicy, GaConfig, GaScheduler, HeuristicPolicy, HeuristicRule, LocalPolicy,
    ResourceView, SaConfig, Task, TaskId,
};
use agentgrid_sim::{RngStream, SimTime};
use rand::Rng;
use std::sync::Arc;

/// A seeded tiny scheduling instance, small enough for
/// [`crate::oracle::brute_force_best`].
pub struct DiffInstance {
    /// The generating seed (printed on failure).
    pub seed: u64,
    /// Resource snapshot with staggered node availability.
    pub view: ResourceView,
    /// 2–5 tasks with random speedup curves and deadlines.
    pub tasks: Vec<Task>,
    /// A fresh evaluation engine.
    pub engine: CachedEngine,
}

/// Generate the seeded instance. Sizes keep the brute-force budget
/// `m! * (2^n - 1)^m` under ~60k decodes per instance.
pub fn diff_instance(seed: u64) -> DiffInstance {
    let mut rng = RngStream::root(seed).derive("verify/differential");
    let nproc = rng.gen_range(2..=4);
    let m = match nproc {
        2 => rng.gen_range(2..=5),
        3 => rng.gen_range(2..=4),
        _ => rng.gen_range(2..=3),
    };
    let r = GridResource::new("S1", Platform::sgi_origin2000(), nproc);
    let mut view = ResourceView::snapshot(&r, SimTime::ZERO).expect("all nodes up");
    // Stagger node availability so idle pockets and ordering matter.
    for free in view.node_free.iter_mut() {
        if rng.gen_range(0..2) == 1 {
            *free = SimTime::from_secs(rng.gen_range(0..6));
        }
    }
    let tasks = (0..m)
        .map(|i| {
            // A random speedup curve: t(1) in [2, 20]s, each extra
            // processor multiplying by [0.5, 1.1] — sometimes slower,
            // so wider is not always better.
            let mut t = 2.0 + rng.gen_range(0..1800) as f64 / 100.0;
            let mut times = vec![t];
            for _ in 1..nproc {
                t *= 0.5 + rng.gen_range(0..60) as f64 / 100.0;
                times.push(t);
            }
            let app = Arc::new(
                ApplicationModel::new(
                    AppId(i as u32),
                    "fuzz",
                    ModelCurve::Tabulated(TabulatedModel::new(times).expect("valid curve")),
                    (1.0, 1000.0),
                )
                .expect("valid model"),
            );
            Task::new(
                TaskId(i as u64),
                app,
                SimTime::ZERO,
                SimTime::from_secs(rng.gen_range(5..60)),
                ExecEnv::Test,
            )
        })
        .collect();
    DiffInstance {
        seed,
        view,
        tasks,
        engine: CachedEngine::new(),
    }
}

/// Everything needed to reproduce a failing seed by hand.
pub fn describe(inst: &DiffInstance) -> String {
    let mut out = format!(
        "seed {}: {} tasks on {} processors\n  node_free: {:?}\n",
        inst.seed,
        inst.tasks.len(),
        inst.view.model.nproc,
        inst.view
            .node_free
            .iter()
            .map(|t| t.as_secs_f64())
            .collect::<Vec<_>>(),
    );
    for task in &inst.tasks {
        let times: Vec<f64> = (1..=inst.view.model.nproc)
            .map(|k| inst.engine.evaluate(&task.app, &inst.view.model, k))
            .collect();
        out.push_str(&format!(
            "  task {}: times {:?} deadline {}s\n",
            task.id.0,
            times,
            task.deadline.as_secs_f64()
        ));
    }
    out
}

/// The reduced GA configuration the differential tests run with — a
/// paper-shaped search at a test-sized budget.
pub fn diff_ga_config() -> GaConfig {
    GaConfig {
        population: 16,
        generations_per_event: 12,
        stall_generations: 5,
        ..GaConfig::default()
    }
}

/// Every *planned* zoo entrant, freshly constructed with RNG streams
/// derived from `seed` (one stream per entrant name, so adding an
/// entrant never shifts another's draws). FIFO and Batch are
/// fixed-allocation baselines, not planned policies — FIFO is the
/// bracket's upper oracle itself.
pub fn planned_zoo(seed: u64) -> Vec<Box<dyn LocalPolicy>> {
    vec![
        Box::new(GaScheduler::new(
            diff_ga_config(),
            RngStream::root(seed).derive("ga"),
        )),
        Box::new(HeuristicPolicy::new(HeuristicRule::MinMin)),
        Box::new(HeuristicPolicy::new(HeuristicRule::MaxMin)),
        Box::new(HeuristicPolicy::new(HeuristicRule::Sufferage)),
        Box::new(AnnealingPolicy::new(
            SaConfig::default(),
            RngStream::root(seed).derive("anneal"),
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_reproducible() {
        let a = diff_instance(7);
        let b = diff_instance(7);
        assert_eq!(a.tasks.len(), b.tasks.len());
        assert_eq!(a.view.node_free, b.view.node_free);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.deadline, y.deadline);
        }
    }

    #[test]
    fn the_roster_has_five_planned_entrants_with_stable_names() {
        let names: Vec<&str> = planned_zoo(1).iter().map(|p| p.name()).collect();
        assert_eq!(names, ["ga", "minmin", "maxmin", "sufferage", "anneal"]);
    }
}
