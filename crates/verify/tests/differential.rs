//! Differential testing: every zoo entrant bracketed by reference
//! oracles.
//!
//! For 50+ seeded tiny instances, each planned policy's final cost must
//! land between the brute-force optimum (nothing can beat an exhaustive
//! search of its own cost function) and the FIFO arrival-order greedy
//! (every entrant seeds from or falls back to exactly that schedule).
//! Ties are allowed on both sides. A failing seed prints the complete
//! instance — execution-time tables, deadlines, node availability —
//! so it can be lifted straight into a unit test.
//!
//! The matchmaking side gets the same treatment: both matchmakers must
//! reproduce the eq. 10 reference completion exactly — the auction may
//! only reprice the *score*.

use agentgrid_agents::{AuctionMatchmaker, Endpoint, FreetimeMatchmaker, Matchmaker, ServiceInfo};
use agentgrid_cluster::ExecEnv;
use agentgrid_pace::{CachedEngine, Catalog, Platform, ResourceModel};
use agentgrid_scheduler::{fifo_seed, CostWeights, GaConfig, GaScheduler};
use agentgrid_sim::{RngStream, SimTime};
use agentgrid_verify::oracle::{brute_force_best, cost_of, fifo_reference, matchmaking_reference};
use agentgrid_verify::zoo::{describe, diff_instance, planned_zoo};

#[test]
fn every_policy_cost_is_bracketed_by_the_oracles_on_50_seeded_instances() {
    let weights = CostWeights::default();
    for seed in 0..55u64 {
        let inst = diff_instance(seed);
        let optimum = brute_force_best(&inst.view, &inst.tasks, &inst.engine, &weights);
        let fifo = fifo_reference(&inst.view, &inst.tasks, &inst.engine, &weights);
        // The bracket itself must be consistent.
        assert!(
            fifo.cost >= optimum.cost - 1e-9,
            "greedy beat the optimum ({} < {}) on:\n{}",
            fifo.cost,
            optimum.cost,
            describe(&inst),
        );
        for mut policy in planned_zoo(seed) {
            let outcome = policy.plan(&inst.view, &inst.tasks, &inst.engine);
            assert!(
                outcome.cost >= optimum.cost - 1e-9,
                "{} beat the exhaustive optimum ({} < {}) on:\n{}\n  optimum: {:?}",
                policy.name(),
                outcome.cost,
                optimum.cost,
                describe(&inst),
                optimum.solution,
            );
            assert!(
                outcome.cost <= fifo.cost + 1e-9,
                "{} did worse than the FIFO seed ({} > {}) on:\n{}\n  fifo: {:?}",
                policy.name(),
                outcome.cost,
                fifo.cost,
                describe(&inst),
                fifo.solution,
            );
        }
    }
}

#[test]
fn the_fifo_seed_matches_the_fifo_oracle_exactly() {
    // `fifo_seed` is what gives every planned policy its upper bound by
    // construction; it must be the byte-identical schedule the oracle's
    // exhaustive search produces.
    let weights = CostWeights::default();
    for seed in 0..25u64 {
        let inst = diff_instance(seed);
        let oracle = fifo_reference(&inst.view, &inst.tasks, &inst.engine, &weights);
        let seeded = fifo_seed(&inst.view, &inst.tasks, &inst.engine);
        assert_eq!(
            seeded.mapping,
            oracle.solution.mapping,
            "fifo_seed diverged from the oracle on:\n{}",
            describe(&inst)
        );
        let cost = cost_of(&inst.view, &inst.tasks, &seeded, &inst.engine, &weights);
        assert!(
            (cost - oracle.cost).abs() <= 1e-12,
            "fifo_seed cost {} != oracle {} on:\n{}",
            cost,
            oracle.cost,
            describe(&inst)
        );
    }
}

#[test]
fn ga_finds_the_exact_optimum_on_trivial_instances() {
    // With one or two tasks the GA's search space is tiny; it should
    // actually hit the brute-force optimum, not just stay above it.
    let weights = CostWeights::default();
    let mut exact = 0;
    let mut total = 0;
    for seed in 100..110u64 {
        let mut inst = diff_instance(seed);
        inst.tasks.truncate(2);
        let optimum = brute_force_best(&inst.view, &inst.tasks, &inst.engine, &weights);
        let mut ga = GaScheduler::new(GaConfig::default(), RngStream::root(seed).derive("ga"));
        let outcome = ga.evolve(&inst.view, &inst.tasks, &inst.engine);
        total += 1;
        if (outcome.cost - optimum.cost).abs() <= 1e-9 {
            exact += 1;
        }
    }
    assert!(
        exact >= total - 1,
        "GA matched the optimum on only {exact}/{total} two-task instances"
    );
}

#[test]
fn every_matchmaker_agrees_with_the_per_k_reference_completion() {
    // Eq. 10 agreement, generalised over the matchmaker zoo: for every
    // case-study application × platform × freetime, each matchmaker's
    // physical completion must equal the independently re-derived per-k
    // minimum. Only the score may differ between matchmakers.
    let engine = CachedEngine::new();
    let platforms = Platform::case_study_set();
    let catalog = Catalog::case_study();
    let now = SimTime::from_secs(3);
    let matchmakers: [&dyn Matchmaker; 2] = [&FreetimeMatchmaker, &AuctionMatchmaker];
    for platform in &platforms {
        for app in catalog.apps() {
            for freetime_s in [0u64, 7, 60] {
                let info = ServiceInfo {
                    agent: Endpoint::new("host", 1000),
                    local: Endpoint::new("host", 10000),
                    machine_type: platform.name.as_str().into(),
                    nproc: 16,
                    environments: vec![ExecEnv::Test].into(),
                    freetime: SimTime::from_secs(freetime_s),
                };
                let model = ResourceModel::new(platform.clone(), info.nproc).unwrap();
                let reference = matchmaking_reference(info.freetime, now, app, &model, &engine);
                for mm in matchmakers {
                    let est = mm
                        .evaluate(
                            &info,
                            app,
                            ExecEnv::Test,
                            SimTime::from_secs(10_000),
                            now,
                            &platforms,
                            &engine,
                        )
                        .unwrap();
                    let ctx = format!(
                        "{} / {} / {} / freetime {freetime_s}s",
                        mm.name(),
                        platform.name,
                        app.name
                    );
                    assert_eq!(est.completion, reference, "{ctx}");
                    // The score must never promise an earlier physical
                    // start than execution alone allows.
                    assert!(est.score >= now, "{ctx}: score {:?} before now", est.score);
                }
            }
        }
    }
}
