//! Differential testing: the GA bracketed by reference oracles.
//!
//! For 50+ seeded tiny instances, the GA's final cost must land between
//! the brute-force optimum (it cannot beat an exhaustive search of its
//! own cost function) and the FIFO arrival-order greedy (it seeds its
//! population with exactly that schedule, so it can never do worse).
//! Ties are allowed on both sides. A failing seed prints the complete
//! instance — execution-time tables, deadlines, node availability —
//! so it can be lifted straight into a unit test.

use agentgrid_cluster::{ExecEnv, GridResource};
use agentgrid_pace::{AppId, ApplicationModel, CachedEngine, ModelCurve, Platform, TabulatedModel};
use agentgrid_scheduler::{CostWeights, GaConfig, GaScheduler, ResourceView, Task, TaskId};
use agentgrid_sim::{RngStream, SimTime};
use agentgrid_verify::oracle::{brute_force_best, fifo_reference};
use rand::Rng;
use std::sync::Arc;

struct Instance {
    seed: u64,
    view: ResourceView,
    tasks: Vec<Task>,
    engine: CachedEngine,
}

/// Sizes keep the brute-force budget `m! * (2^n - 1)^m` under ~60k
/// decodes per instance.
fn instance(seed: u64) -> Instance {
    let mut rng = RngStream::root(seed).derive("verify/differential");
    let nproc = rng.gen_range(2..=4);
    let m = match nproc {
        2 => rng.gen_range(2..=5),
        3 => rng.gen_range(2..=4),
        _ => rng.gen_range(2..=3),
    };
    let r = GridResource::new("S1", Platform::sgi_origin2000(), nproc);
    let mut view = ResourceView::snapshot(&r, SimTime::ZERO).expect("all nodes up");
    // Stagger node availability so idle pockets and ordering matter.
    for free in view.node_free.iter_mut() {
        if rng.gen_range(0..2) == 1 {
            *free = SimTime::from_secs(rng.gen_range(0..6));
        }
    }
    let tasks = (0..m)
        .map(|i| {
            // A random speedup curve: t(1) in [2, 20]s, each extra
            // processor multiplying by [0.5, 1.1] — sometimes slower,
            // so wider is not always better.
            let mut t = 2.0 + rng.gen_range(0..1800) as f64 / 100.0;
            let mut times = vec![t];
            for _ in 1..nproc {
                t *= 0.5 + rng.gen_range(0..60) as f64 / 100.0;
                times.push(t);
            }
            let app = Arc::new(
                ApplicationModel::new(
                    AppId(i as u32),
                    "fuzz",
                    ModelCurve::Tabulated(TabulatedModel::new(times).expect("valid curve")),
                    (1.0, 1000.0),
                )
                .expect("valid model"),
            );
            Task::new(
                TaskId(i as u64),
                app,
                SimTime::ZERO,
                SimTime::from_secs(rng.gen_range(5..60)),
                ExecEnv::Test,
            )
        })
        .collect();
    Instance {
        seed,
        view,
        tasks,
        engine: CachedEngine::new(),
    }
}

/// Everything needed to reproduce a failing seed by hand.
fn describe(inst: &Instance) -> String {
    let mut out = format!(
        "seed {}: {} tasks on {} processors\n  node_free: {:?}\n",
        inst.seed,
        inst.tasks.len(),
        inst.view.model.nproc,
        inst.view
            .node_free
            .iter()
            .map(|t| t.as_secs_f64())
            .collect::<Vec<_>>(),
    );
    for task in &inst.tasks {
        let times: Vec<f64> = (1..=inst.view.model.nproc)
            .map(|k| inst.engine.evaluate(&task.app, &inst.view.model, k))
            .collect();
        out.push_str(&format!(
            "  task {}: times {:?} deadline {}s\n",
            task.id.0,
            times,
            task.deadline.as_secs_f64()
        ));
    }
    out
}

#[test]
fn ga_cost_is_bracketed_by_the_oracles_on_50_seeded_instances() {
    let weights = CostWeights::default();
    for seed in 0..55u64 {
        let inst = instance(seed);
        let optimum = brute_force_best(&inst.view, &inst.tasks, &inst.engine, &weights);
        let fifo = fifo_reference(&inst.view, &inst.tasks, &inst.engine, &weights);

        let mut ga = GaScheduler::new(
            GaConfig {
                population: 16,
                generations_per_event: 12,
                stall_generations: 5,
                ..GaConfig::default()
            },
            RngStream::root(seed).derive("ga"),
        );
        let outcome = ga.evolve(&inst.view, &inst.tasks, &inst.engine);

        assert!(
            outcome.cost >= optimum.cost - 1e-9,
            "GA beat the exhaustive optimum ({} < {}) on:\n{}\n  optimum: {:?}",
            outcome.cost,
            optimum.cost,
            describe(&inst),
            optimum.solution,
        );
        assert!(
            outcome.cost <= fifo.cost + 1e-9,
            "GA did worse than its own FIFO seed ({} > {}) on:\n{}\n  fifo: {:?}",
            outcome.cost,
            fifo.cost,
            describe(&inst),
            fifo.solution,
        );
        // The bracket itself must be consistent.
        assert!(
            fifo.cost >= optimum.cost - 1e-9,
            "greedy beat the optimum ({} < {}) on:\n{}",
            fifo.cost,
            optimum.cost,
            describe(&inst),
        );
    }
}

#[test]
fn ga_finds_the_exact_optimum_on_trivial_instances() {
    // With one or two tasks the GA's search space is tiny; it should
    // actually hit the brute-force optimum, not just stay above it.
    let weights = CostWeights::default();
    let mut exact = 0;
    let mut total = 0;
    for seed in 100..110u64 {
        let mut inst = instance(seed);
        inst.tasks.truncate(2);
        let optimum = brute_force_best(&inst.view, &inst.tasks, &inst.engine, &weights);
        let mut ga = GaScheduler::new(GaConfig::default(), RngStream::root(seed).derive("ga"));
        let outcome = ga.evolve(&inst.view, &inst.tasks, &inst.engine);
        total += 1;
        if (outcome.cost - optimum.cost).abs() <= 1e-9 {
            exact += 1;
        }
    }
    assert!(
        exact >= total - 1,
        "GA matched the optimum on only {exact}/{total} two-task instances"
    );
}
