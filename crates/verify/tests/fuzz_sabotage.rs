//! The fuzzer must catch a *real* bug, not just bless clean runs.
//!
//! `FaultPlan::sabotage_dedup` (test-only) disables both grid-level
//! exactly-once protections — the stale-completion guard and the
//! completion-dedup set — recreating exactly the bug they exist to
//! prevent: a completion event scheduled for a pre-crash incarnation of
//! a task is processed as if it were real. The fuzzer must notice
//! (via a debug assertion panic in debug builds, or task accounting in
//! release) and shrink the scenario to a tiny reproducible case.

use agentgrid_verify::fuzz::{shrink, FuzzCase};
use agentgrid_workload::PolicyKind;

#[test]
fn injected_dedup_bug_is_caught_and_shrunk_to_a_tiny_case() {
    let case = FuzzCase {
        seed: 0,
        resources: 3,
        nproc: 4,
        requests: 12,
        crashes: 2,
        design: 3,
        sabotage: true,
        shards: 2,
        policy: PolicyKind::Ga,
    };

    // Caught: the sabotaged run fails...
    let failure = case.assert_fails();
    // ...while the identical scenario with the protections in place is
    // clean, so it really is the dedup removal that the fuzzer caught.
    FuzzCase {
        sabotage: false,
        ..case
    }
    .assert_clean();

    // Shrunk: to at most 3 resources / 5 tasks (in practice all the
    // way down to one of each), and the shrunken case still fails.
    let shrunk = shrink(case);
    assert!(
        shrunk.resources <= 3,
        "shrunk to {} resources: {shrunk:?} (original failure: {failure})",
        shrunk.resources
    );
    assert!(
        shrunk.requests <= 5,
        "shrunk to {} requests: {shrunk:?} (original failure: {failure})",
        shrunk.requests
    );
    assert!(shrunk.sabotage, "shrinking never flips the sabotage flag");
    let shrunk_failure = shrunk.assert_fails();
    // The regression line replays on its own.
    let line = shrunk.regression_line();
    assert!(
        line.contains("sabotage: true") && line.ends_with("case.assert_fails();"),
        "unexpected regression line: {line} ({shrunk_failure})"
    );
}
