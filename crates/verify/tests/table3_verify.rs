//! The paper's own experiment under the online invariant checker.
//!
//! One strict-mode [`InvariantRecorder`] watches all three Table 2
//! experiments back to back (task ids repeat across experiments — the
//! end-of-run horizon event resets the per-run state). This is the
//! library-level twin of `agentgrid table3 --verify`, which
//! `tests/cli.rs` exercises through the real binary.

use agentgrid::{run_table3, RunOptions};
use agentgrid_cluster::ExecEnv;
use agentgrid_sim::SimDuration;
use agentgrid_telemetry::{InvariantRecorder, Telemetry};
use agentgrid_workload::{GridTopology, WorkloadConfig};
use std::sync::Arc;

#[test]
fn table3_run_reports_zero_invariant_violations() {
    let topology = GridTopology::flat(3, 4);
    let workload = WorkloadConfig {
        requests: 25,
        interarrival: SimDuration::from_secs(1),
        seed: 77,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let recorder = Arc::new(InvariantRecorder::strict());
    let mut opts = RunOptions::fast();
    opts.telemetry = Telemetry::new(recorder.clone());

    let results = run_table3(&topology, &workload, &opts);

    assert_eq!(results.experiments.len(), 3);
    for e in &results.experiments {
        assert_eq!(e.requests, 25);
    }
    assert!(
        recorder.events_seen() > 0,
        "the recorder must actually see the stream"
    );
    assert!(recorder.is_clean(), "{}", recorder.report());
}
