//! The Table 2 experiment design matrix.
//!
//! | Experiment | FIFO | GA | Agent-based service discovery |
//! |---|---|---|---|
//! | 1 | ✓ |   |   |
//! | 2 |   | ✓ |   |
//! | 3 |   | ✓ | ✓ |

/// The local scheduling algorithm of an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalPolicy {
    /// First-come-first-served (comparison baseline).
    Fifo,
    /// The genetic-algorithm scheduler.
    Ga,
    /// Condor/LSF-style batch queueing with EASY backfill (related-work
    /// baseline, beyond the paper's Table 2).
    Batch,
}

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentDesign {
    /// Experiment number (1–3 in the paper).
    pub number: u32,
    /// Local scheduling algorithm.
    pub local_policy: LocalPolicy,
    /// Whether agent-based service discovery is enabled.
    pub agents_enabled: bool,
}

impl ExperimentDesign {
    /// Experiment 1: FIFO, no agents.
    pub fn experiment1() -> ExperimentDesign {
        ExperimentDesign {
            number: 1,
            local_policy: LocalPolicy::Fifo,
            agents_enabled: false,
        }
    }

    /// Experiment 2: GA, no agents.
    pub fn experiment2() -> ExperimentDesign {
        ExperimentDesign {
            number: 2,
            local_policy: LocalPolicy::Ga,
            agents_enabled: false,
        }
    }

    /// Experiment 3: GA plus agent-based service discovery.
    pub fn experiment3() -> ExperimentDesign {
        ExperimentDesign {
            number: 3,
            local_policy: LocalPolicy::Ga,
            agents_enabled: true,
        }
    }

    /// The full Table 2.
    pub fn table2() -> [ExperimentDesign; 3] {
        [
            ExperimentDesign::experiment1(),
            ExperimentDesign::experiment2(),
            ExperimentDesign::experiment3(),
        ]
    }

    /// A human-readable label, e.g. `"Exp 3: GA + agent discovery"`.
    pub fn label(&self) -> String {
        let policy = match self.local_policy {
            LocalPolicy::Fifo => "FIFO",
            LocalPolicy::Ga => "GA",
            LocalPolicy::Batch => "Batch",
        };
        if self.agents_enabled {
            format!("Exp {}: {policy} + agent discovery", self.number)
        } else {
            format!("Exp {}: {policy}", self.number)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let t = ExperimentDesign::table2();
        assert_eq!(t[0].local_policy, LocalPolicy::Fifo);
        assert!(!t[0].agents_enabled);
        assert_eq!(t[1].local_policy, LocalPolicy::Ga);
        assert!(!t[1].agents_enabled);
        assert_eq!(t[2].local_policy, LocalPolicy::Ga);
        assert!(t[2].agents_enabled);
        assert_eq!(t.iter().map(|e| e.number).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(ExperimentDesign::experiment1().label(), "Exp 1: FIFO");
        assert_eq!(
            ExperimentDesign::experiment3().label(),
            "Exp 3: GA + agent discovery"
        );
    }
}
