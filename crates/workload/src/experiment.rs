//! The Table 2 experiment design matrix.
//!
//! | Experiment | FIFO | GA | Agent-based service discovery |
//! |---|---|---|---|
//! | 1 | ✓ |   |   |
//! | 2 |   | ✓ |   |
//! | 3 |   | ✓ | ✓ |

/// The local scheduling algorithm of an experiment — one token per
/// entrant in the scheduler zoo (see DESIGN.md §15).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-come-first-served (comparison baseline).
    Fifo,
    /// The genetic-algorithm scheduler.
    Ga,
    /// Condor/LSF-style batch queueing with EASY backfill (related-work
    /// baseline, beyond the paper's Table 2).
    Batch,
    /// Min-min batch heuristic: repeatedly start the task with the
    /// earliest best completion time.
    MinMin,
    /// Max-min batch heuristic: repeatedly start the task with the
    /// *latest* best completion time.
    MaxMin,
    /// Sufferage batch heuristic: prioritise the task that loses the
    /// most if denied its best allocation.
    Sufferage,
    /// Seeded simulated-annealing search over the two-part coding.
    Anneal,
}

/// Backwards-compatible alias for the pre-zoo name of [`PolicyKind`].
pub type LocalPolicy = PolicyKind;

impl PolicyKind {
    /// Every entrant in the zoo, in tournament order.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Fifo,
        PolicyKind::Ga,
        PolicyKind::Batch,
        PolicyKind::MinMin,
        PolicyKind::MaxMin,
        PolicyKind::Sufferage,
        PolicyKind::Anneal,
    ];

    /// Stable lowercase token — the same string the CLI, recordings and
    /// result JSON use.
    pub fn token(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::Ga => "ga",
            PolicyKind::Batch => "batch",
            PolicyKind::MinMin => "minmin",
            PolicyKind::MaxMin => "maxmin",
            PolicyKind::Sufferage => "sufferage",
            PolicyKind::Anneal => "anneal",
        }
    }

    /// Parse a lowercase token produced by [`PolicyKind::token`].
    pub fn parse(token: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.iter().copied().find(|p| p.token() == token)
    }

    /// Display label used in experiment output, e.g. `"GA"`.
    pub fn display(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Ga => "GA",
            PolicyKind::Batch => "Batch",
            PolicyKind::MinMin => "Min-min",
            PolicyKind::MaxMin => "Max-min",
            PolicyKind::Sufferage => "Sufferage",
            PolicyKind::Anneal => "Anneal",
        }
    }
}

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentDesign {
    /// Experiment number (1–3 in the paper).
    pub number: u32,
    /// Local scheduling algorithm.
    pub local_policy: PolicyKind,
    /// Whether agent-based service discovery is enabled.
    pub agents_enabled: bool,
}

impl ExperimentDesign {
    /// Experiment 1: FIFO, no agents.
    pub fn experiment1() -> ExperimentDesign {
        ExperimentDesign {
            number: 1,
            local_policy: PolicyKind::Fifo,
            agents_enabled: false,
        }
    }

    /// Experiment 2: GA, no agents.
    pub fn experiment2() -> ExperimentDesign {
        ExperimentDesign {
            number: 2,
            local_policy: PolicyKind::Ga,
            agents_enabled: false,
        }
    }

    /// Experiment 3: GA plus agent-based service discovery.
    pub fn experiment3() -> ExperimentDesign {
        ExperimentDesign {
            number: 3,
            local_policy: PolicyKind::Ga,
            agents_enabled: true,
        }
    }

    /// The full Table 2.
    pub fn table2() -> [ExperimentDesign; 3] {
        [
            ExperimentDesign::experiment1(),
            ExperimentDesign::experiment2(),
            ExperimentDesign::experiment3(),
        ]
    }

    /// A human-readable label, e.g. `"Exp 3: GA + agent discovery"`.
    pub fn label(&self) -> String {
        let policy = self.local_policy.display();
        if self.agents_enabled {
            format!("Exp {}: {policy} + agent discovery", self.number)
        } else {
            format!("Exp {}: {policy}", self.number)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let t = ExperimentDesign::table2();
        assert_eq!(t[0].local_policy, PolicyKind::Fifo);
        assert!(!t[0].agents_enabled);
        assert_eq!(t[1].local_policy, PolicyKind::Ga);
        assert!(!t[1].agents_enabled);
        assert_eq!(t[2].local_policy, PolicyKind::Ga);
        assert!(t[2].agents_enabled);
        assert_eq!(t.iter().map(|e| e.number).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(ExperimentDesign::experiment1().label(), "Exp 1: FIFO");
        assert_eq!(
            ExperimentDesign::experiment3().label(),
            "Exp 3: GA + agent discovery"
        );
    }

    #[test]
    fn tokens_round_trip_for_every_entrant() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.token()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }
}
