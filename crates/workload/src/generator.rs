//! The seeded request stream.

use agentgrid_cluster::ExecEnv;
use agentgrid_pace::Catalog;
use agentgrid_sim::{RngStream, SimDuration, SimTime};
use rand::Rng;

/// One generated task-execution request.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratedRequest {
    /// Arrival instant at the target agent.
    pub at: SimTime,
    /// The randomly selected target agent.
    pub agent: String,
    /// The randomly selected application (a catalogue name).
    pub application: String,
    /// Absolute deadline: arrival + a uniform draw from the
    /// application's Table 1 deadline domain.
    pub deadline: SimTime,
    /// Execution environment required.
    pub environment: ExecEnv,
}

/// How request arrival instants are spaced.
///
/// The paper's request phase is strictly periodic ("requests ... are sent
/// at one second intervals"); real grid front-ends see burstier traffic,
/// so the generator also offers Poisson and on/off burst processes with
/// the same mean rate — useful for stress-testing the schedulers beyond
/// the paper's workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalPattern {
    /// One request every `interarrival` exactly (the paper).
    Periodic,
    /// Exponentially distributed gaps with mean `interarrival`.
    Poisson,
    /// `burst_size` back-to-back requests (1 ms apart), then a gap that
    /// restores the configured mean rate.
    Bursts {
        /// Requests per burst (≥ 1).
        burst_size: usize,
    },
}

/// Workload parameters (defaults reproduce the case study).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of requests (paper: 600).
    pub requests: usize,
    /// Interval between consecutive requests (paper: 1 s).
    pub interarrival: SimDuration,
    /// Master seed; the same seed yields the identical workload.
    pub seed: u64,
    /// Agents requests may be sent to.
    pub agents: Vec<String>,
    /// Environment requested (the experiments use test mode).
    pub environment: ExecEnv,
}

impl WorkloadConfig {
    /// The paper's request phase: 600 requests at 1 s intervals.
    pub fn case_study(agents: Vec<String>, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            requests: 600,
            interarrival: SimDuration::from_secs(1),
            seed,
            agents,
            environment: ExecEnv::Test,
        }
    }

    /// Generate the request stream against an application catalogue
    /// (periodic arrivals, the paper's pattern).
    ///
    /// # Panics
    /// If the agent list or the catalogue is empty.
    pub fn generate(&self, catalog: &Catalog) -> Vec<GeneratedRequest> {
        self.generate_with_pattern(catalog, ArrivalPattern::Periodic)
    }

    /// Generate the request stream with an explicit arrival pattern. All
    /// patterns share the same mean rate (`1 / interarrival`), the same
    /// seed-derived draws for agents/applications/deadlines, and the same
    /// guarantee that arrival instants are strictly increasing.
    ///
    /// # Panics
    /// If the agent list or the catalogue is empty, or a burst size is 0.
    pub fn generate_with_pattern(
        &self,
        catalog: &Catalog,
        pattern: ArrivalPattern,
    ) -> Vec<GeneratedRequest> {
        assert!(!self.agents.is_empty(), "workload needs at least one agent");
        assert!(
            !catalog.is_empty(),
            "workload needs at least one application"
        );
        if let ArrivalPattern::Bursts { burst_size } = pattern {
            assert!(burst_size >= 1, "bursts need at least one request");
        }
        let mut rng = RngStream::root(self.seed).derive("workload");
        let mut arrivals = RngStream::root(self.seed).derive("workload/arrivals");
        let mean_s = self.interarrival.as_secs_f64();
        let mut out = Vec::with_capacity(self.requests);
        let mut at = SimTime::ZERO;
        for i in 0..self.requests {
            let gap_s = match pattern {
                ArrivalPattern::Periodic => mean_s,
                ArrivalPattern::Poisson => {
                    // Inverse-CDF sampling of Exp(1/mean).
                    let u: f64 = arrivals.gen_range(f64::EPSILON..1.0);
                    -mean_s * u.ln()
                }
                ArrivalPattern::Bursts { burst_size } => {
                    if i % burst_size == 0 && i > 0 {
                        // The inter-burst gap restores the mean rate.
                        mean_s * burst_size as f64 - 0.001 * (burst_size - 1) as f64
                    } else if i == 0 {
                        mean_s
                    } else {
                        0.001
                    }
                }
            };
            // Strictly increasing arrivals (min 1 tick).
            at = (at + SimDuration::from_secs_f64(gap_s)).max(at + SimDuration::from_ticks(1));
            let agent = self.agents[rng.gen_range(0..self.agents.len())].clone();
            let app = &catalog.apps()[rng.gen_range(0..catalog.len())];
            let (lo, hi) = app.deadline_bounds_s;
            let rel = rng.gen_range(lo..=hi);
            out.push(GeneratedRequest {
                at,
                agent,
                application: app.name.clone(),
                deadline: at + SimDuration::from_secs_f64(rel),
                environment: self.environment,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agents() -> Vec<String> {
        (1..=12).map(|i| format!("S{i}")).collect()
    }

    #[test]
    fn case_study_shape() {
        let cfg = WorkloadConfig::case_study(agents(), 42);
        let reqs = cfg.generate(&Catalog::case_study());
        assert_eq!(reqs.len(), 600);
        assert_eq!(reqs[0].at, SimTime::from_secs(1));
        assert_eq!(reqs[599].at, SimTime::from_secs(600));
        assert!(reqs.iter().all(|r| r.environment == ExecEnv::Test));
    }

    #[test]
    fn same_seed_same_workload() {
        let cat = Catalog::case_study();
        let a = WorkloadConfig::case_study(agents(), 7).generate(&cat);
        let b = WorkloadConfig::case_study(agents(), 7).generate(&cat);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_workload() {
        let cat = Catalog::case_study();
        let a = WorkloadConfig::case_study(agents(), 7).generate(&cat);
        let b = WorkloadConfig::case_study(agents(), 8).generate(&cat);
        assert_ne!(a, b);
    }

    #[test]
    fn deadlines_respect_table1_domains() {
        let cat = Catalog::case_study();
        let reqs = WorkloadConfig::case_study(agents(), 3).generate(&cat);
        for r in &reqs {
            let app = cat.by_name(&r.application).unwrap();
            let (lo, hi) = app.deadline_bounds_s;
            let rel = r.deadline.signed_secs_since(r.at);
            assert!(
                rel >= lo - 1e-6 && rel <= hi + 1e-6,
                "{} deadline {rel} outside [{lo}, {hi}]",
                r.application
            );
        }
    }

    #[test]
    fn all_agents_and_apps_are_exercised() {
        let cat = Catalog::case_study();
        let reqs = WorkloadConfig::case_study(agents(), 1).generate(&cat);
        for agent in agents() {
            assert!(
                reqs.iter().any(|r| r.agent == agent),
                "{agent} never chosen"
            );
        }
        for app in cat.apps() {
            assert!(
                reqs.iter().any(|r| r.application == app.name),
                "{} never chosen",
                app.name
            );
        }
    }

    #[test]
    fn poisson_arrivals_match_the_mean_rate() {
        let cat = Catalog::case_study();
        let cfg = WorkloadConfig::case_study(agents(), 9);
        let reqs = cfg.generate_with_pattern(&cat, ArrivalPattern::Poisson);
        assert_eq!(reqs.len(), 600);
        // Strictly increasing arrivals.
        for w in reqs.windows(2) {
            assert!(w[1].at > w[0].at);
        }
        // Mean gap ≈ 1 s (law of large numbers; generous tolerance).
        let span = reqs.last().unwrap().at.as_secs_f64();
        let mean = span / 600.0;
        assert!((0.85..1.15).contains(&mean), "mean interarrival {mean}");
    }

    #[test]
    fn poisson_draws_match_periodic_draws() {
        // Arrival jitter must not perturb the agent/app/deadline draws:
        // the i-th request picks identically under either pattern.
        let cat = Catalog::case_study();
        let cfg = WorkloadConfig::case_study(agents(), 11);
        let periodic = cfg.generate(&cat);
        let poisson = cfg.generate_with_pattern(&cat, ArrivalPattern::Poisson);
        for (a, b) in periodic.iter().zip(&poisson) {
            assert_eq!(a.agent, b.agent);
            assert_eq!(a.application, b.application);
        }
    }

    #[test]
    fn bursts_cluster_and_keep_the_mean_rate() {
        let cat = Catalog::case_study();
        let mut cfg = WorkloadConfig::case_study(agents(), 13);
        cfg.requests = 100;
        let reqs = cfg.generate_with_pattern(&cat, ArrivalPattern::Bursts { burst_size: 10 });
        // Within a burst, gaps are 1 ms.
        let gap01 = reqs[2].at.saturating_since(reqs[1].at).as_secs_f64();
        assert!((gap01 - 0.001).abs() < 1e-9, "intra-burst gap {gap01}");
        // Across bursts the mean rate holds.
        let span = reqs.last().unwrap().at.as_secs_f64();
        let mean = span / 100.0;
        assert!((0.85..1.15).contains(&mean), "mean interarrival {mean}");
        for w in reqs.windows(2) {
            assert!(w[1].at > w[0].at);
        }
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_burst_size_panics() {
        let cfg = WorkloadConfig::case_study(agents(), 1);
        cfg.generate_with_pattern(
            &Catalog::case_study(),
            ArrivalPattern::Bursts { burst_size: 0 },
        );
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn empty_agent_list_panics() {
        let cfg = WorkloadConfig::case_study(vec![], 1);
        cfg.generate(&Catalog::case_study());
    }

    #[test]
    fn small_custom_workload() {
        let cfg = WorkloadConfig {
            requests: 5,
            interarrival: SimDuration::from_secs(10),
            seed: 1,
            agents: vec!["only".into()],
            environment: ExecEnv::Mpi,
        };
        let reqs = cfg.generate(&Catalog::case_study());
        assert_eq!(reqs.len(), 5);
        assert_eq!(reqs[4].at, SimTime::from_secs(50));
        assert!(reqs.iter().all(|r| r.agent == "only"));
        assert!(reqs.iter().all(|r| r.environment == ExecEnv::Mpi));
    }
}
