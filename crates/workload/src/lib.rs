#![warn(missing_docs)]

//! Case-study workload machinery (paper §4.1).
//!
//! "During each experiment, requests for one of the seven test
//! applications are sent at one second intervals to randomly selected
//! agents. The required execution time deadline for the application is
//! also selected randomly from a given domain ... The request phase of
//! each experiment lasts for ten minutes during which 600 task execution
//! requests are sent out to the agents. While the selection of agents,
//! applications and requirements are random, the seed is set to the same
//! so that the workload for each experiment is identical."
//!
//! * [`generator`] — the seeded request stream.
//! * [`experiment`] — the Table 2 design matrix.
//! * [`topology`] — the Fig. 7 resource set.

pub mod experiment;
pub mod generator;
pub mod topology;

pub use experiment::{ExperimentDesign, LocalPolicy, PolicyKind};
pub use generator::{ArrivalPattern, GeneratedRequest, WorkloadConfig};
pub use topology::{GridTopology, ResourceSpec};
