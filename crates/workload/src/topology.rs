//! The Fig. 7 resource set, and custom grid topologies for examples.

use agentgrid_pace::Platform;

/// One grid resource: an agent name, its machine type and node count.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceSpec {
    /// Agent/resource name (e.g. `"S1"`).
    pub name: String,
    /// Machine type of every node.
    pub platform: Platform,
    /// Number of processing nodes.
    pub nproc: usize,
    /// Parent agent in the hierarchy (`None` for the head).
    pub parent: Option<String>,
}

/// A grid topology: resources plus the agent hierarchy over them.
#[derive(Clone, Debug, PartialEq)]
pub struct GridTopology {
    /// All resources, head first.
    pub resources: Vec<ResourceSpec>,
}

impl GridTopology {
    /// The case-study grid (Fig. 7): twelve 16-node resources across five
    /// machine types, S1 at the head, balanced three-level hierarchy
    /// (S2–S4 under S1; S5–S7 under S2, S8–S10 under S3, S11–S12 under
    /// S4 — the paper's figure does not pin the exact shape; see
    /// DESIGN.md).
    pub fn case_study() -> GridTopology {
        let spec = |name: &str, platform: Platform, parent: Option<&str>| ResourceSpec {
            name: name.to_string(),
            platform,
            nproc: 16,
            parent: parent.map(str::to_string),
        };
        GridTopology {
            resources: vec![
                spec("S1", Platform::sgi_origin2000(), None),
                spec("S2", Platform::sgi_origin2000(), Some("S1")),
                spec("S3", Platform::sun_ultra10(), Some("S1")),
                spec("S4", Platform::sun_ultra10(), Some("S1")),
                spec("S5", Platform::sun_ultra5(), Some("S2")),
                spec("S6", Platform::sun_ultra5(), Some("S2")),
                spec("S7", Platform::sun_ultra5(), Some("S2")),
                spec("S8", Platform::sun_ultra1(), Some("S3")),
                spec("S9", Platform::sun_ultra1(), Some("S3")),
                spec("S10", Platform::sun_ultra1(), Some("S3")),
                spec("S11", Platform::sun_sparcstation2(), Some("S4")),
                spec("S12", Platform::sun_sparcstation2(), Some("S4")),
            ],
        }
    }

    /// A small homogeneous grid for examples and quick tests: `n`
    /// resources of `nproc` reference-platform nodes in a flat hierarchy
    /// under the first.
    pub fn flat(n: usize, nproc: usize) -> GridTopology {
        assert!(n >= 1, "topology needs at least one resource");
        let resources = (0..n)
            .map(|i| ResourceSpec {
                name: format!("R{}", i + 1),
                platform: Platform::sgi_origin2000(),
                nproc,
                parent: if i == 0 { None } else { Some("R1".to_string()) },
            })
            .collect();
        GridTopology { resources }
    }

    /// A scalability topology: a complete `branching`-ary tree of
    /// `levels` levels (level 0 = the head alone), `nproc` nodes per
    /// resource, machine types cycling through the case-study set from
    /// fastest at the head to slowest at the leaves.
    pub fn tree(levels: u32, branching: usize, nproc: usize) -> GridTopology {
        assert!(levels >= 1, "tree needs at least the head level");
        assert!(branching >= 1, "branching must be at least 1");
        let platforms = Platform::case_study_set();
        let mut resources: Vec<ResourceSpec> = Vec::new();
        let mut prev_level: Vec<String> = Vec::new();
        let mut counter = 0usize;
        for level in 0..levels {
            let count = if level == 0 {
                1
            } else {
                prev_level.len() * branching
            };
            let mut this_level = Vec::with_capacity(count);
            for i in 0..count {
                counter += 1;
                let name = format!("A{counter}");
                let parent = if level == 0 {
                    None
                } else {
                    Some(prev_level[i / branching].clone())
                };
                let pf = (level as usize * platforms.len()) / levels as usize;
                resources.push(ResourceSpec {
                    name: name.clone(),
                    platform: platforms[pf.min(platforms.len() - 1)].clone(),
                    nproc,
                    parent,
                });
                this_level.push(name);
            }
            prev_level = this_level;
        }
        GridTopology { resources }
    }

    /// Build a topology from its CLI/recording spec string:
    /// `case-study`, `flat:<resources>:<nproc>` or
    /// `tree:<levels>:<branching>:<nproc>`.
    pub fn from_spec(spec: &str) -> Result<GridTopology, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["case-study"] => Ok(GridTopology::case_study()),
            ["flat", n, nproc] => {
                let n = n.parse().map_err(|e| format!("flat resources: {e}"))?;
                let p = nproc.parse().map_err(|e| format!("flat nproc: {e}"))?;
                Ok(GridTopology::flat(n, p))
            }
            ["tree", levels, branching, nproc] => {
                let l = levels.parse().map_err(|e| format!("tree levels: {e}"))?;
                let b = branching
                    .parse()
                    .map_err(|e| format!("tree branching: {e}"))?;
                let p = nproc.parse().map_err(|e| format!("tree nproc: {e}"))?;
                Ok(GridTopology::tree(l, b, p))
            }
            _ => Err(format!("bad topology spec `{spec}`")),
        }
    }

    /// Agent names in declaration order.
    pub fn names(&self) -> Vec<String> {
        self.resources.iter().map(|r| r.name.clone()).collect()
    }

    /// `(name, parent)` pairs for hierarchy construction.
    pub fn parent_pairs(&self) -> Vec<(String, Option<String>)> {
        self.resources
            .iter()
            .map(|r| (r.name.clone(), r.parent.clone()))
            .collect()
    }

    /// Total processing nodes in the grid.
    pub fn total_nodes(&self) -> usize {
        self.resources.iter().map(|r| r.nproc).sum()
    }

    /// Look up a resource by name.
    pub fn get(&self, name: &str) -> Option<&ResourceSpec> {
        self.resources.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_has_192_nodes_over_12_resources() {
        let t = GridTopology::case_study();
        assert_eq!(t.resources.len(), 12);
        assert_eq!(t.total_nodes(), 192);
        assert_eq!(t.names().len(), 12);
        assert_eq!(t.get("S1").unwrap().parent, None);
        assert_eq!(t.get("S12").unwrap().parent.as_deref(), Some("S4"));
        assert!(t.get("S13").is_none());
    }

    #[test]
    fn case_study_platform_mix_matches_fig7() {
        let t = GridTopology::case_study();
        let count = |name: &str| {
            t.resources
                .iter()
                .filter(|r| r.platform.name == name)
                .count()
        };
        assert_eq!(count("SGIOrigin2000"), 2);
        assert_eq!(count("SunUltra10"), 2);
        assert_eq!(count("SunUltra5"), 3);
        assert_eq!(count("SunUltra1"), 3);
        assert_eq!(count("SunSPARCstation2"), 2);
    }

    #[test]
    fn flat_topology_shape() {
        let t = GridTopology::flat(3, 4);
        assert_eq!(t.resources.len(), 3);
        assert_eq!(t.total_nodes(), 12);
        assert_eq!(t.get("R1").unwrap().parent, None);
        assert_eq!(t.get("R3").unwrap().parent.as_deref(), Some("R1"));
    }

    #[test]
    fn parent_pairs_feed_hierarchy_construction() {
        let t = GridTopology::case_study();
        let pairs = t.parent_pairs();
        assert_eq!(pairs.len(), 12);
        assert_eq!(pairs.iter().filter(|(_, p)| p.is_none()).count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn flat_rejects_zero_resources() {
        let _ = GridTopology::flat(0, 4);
    }

    #[test]
    fn tree_shape_is_a_complete_tree() {
        // 3 levels, branching 3: 1 + 3 + 9 = 13 resources.
        let t = GridTopology::tree(3, 3, 8);
        assert_eq!(t.resources.len(), 13);
        assert_eq!(t.total_nodes(), 13 * 8);
        assert_eq!(t.get("A1").unwrap().parent, None);
        // Heads of the second level hang off A1.
        for name in ["A2", "A3", "A4"] {
            assert_eq!(t.get(name).unwrap().parent.as_deref(), Some("A1"));
        }
        // First leaf hangs off the first second-level agent.
        assert_eq!(t.get("A5").unwrap().parent.as_deref(), Some("A2"));
        assert_eq!(t.get("A13").unwrap().parent.as_deref(), Some("A4"));
        // Exactly one head.
        assert_eq!(t.resources.iter().filter(|r| r.parent.is_none()).count(), 1);
    }

    #[test]
    fn tree_platforms_slow_toward_leaves() {
        let t = GridTopology::tree(3, 2, 4);
        let head = &t.get("A1").unwrap().platform;
        let leaf = &t.resources.last().unwrap().platform;
        assert!(head.cpu_factor <= leaf.cpu_factor);
    }

    #[test]
    fn single_level_tree_is_just_the_head() {
        let t = GridTopology::tree(1, 5, 4);
        assert_eq!(t.resources.len(), 1);
    }

    #[test]
    #[should_panic(expected = "head level")]
    fn tree_rejects_zero_levels() {
        let _ = GridTopology::tree(0, 2, 4);
    }
}
