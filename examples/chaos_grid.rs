//! A grid run under injected faults (DESIGN.md §10).
//!
//! ```text
//! cargo run --example chaos_grid --release
//! ```
//!
//! Scripts a mid-run crash of one resource, a lossy advertisement
//! plane and an ACT TTL, then replays the run and shows the recovery
//! machinery working: the crash loses queued tasks, acknowledged
//! dispatch re-routes them from their origins, and the completion-dedup
//! set keeps the outcome exactly-once. The same seeds always replay the
//! same history — rerun it and compare.

use agentgrid::prelude::*;
use std::sync::Arc;

fn main() {
    let topology = GridTopology::flat(3, 8);
    let workload = WorkloadConfig {
        requests: 30,
        interarrival: SimDuration::from_secs(1),
        seed: 7,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };

    // R2 dies at t = 10 s with whatever it has queued and comes back at
    // t = 40 s; every fifth advertisement pull is lost; ACT entries
    // older than 30 s stop winning matchmaking.
    let plan = FaultPlan::none()
        .with_crash("R2", SimTime::from_secs(10), SimTime::from_secs(40))
        .with_pull_loss(0.2)
        .with_act_ttl(SimDuration::from_secs(30))
        .with_dispatch_timeout(SimDuration::from_secs(2));

    let opts = RunOptions::fast();
    let ring = Arc::new(RingRecorder::unbounded());
    let telemetry = Telemetry::new(ring.clone());
    let mut config = GridConfig::new(LocalPolicy::Ga, true, workload.seed);
    config.ga = opts.ga;
    config.telemetry = telemetry.clone();
    config.chaos = plan;

    let mut grid = GridSystem::new(&topology, &opts.catalog, &config);
    let mut sim = Simulation::new();
    sim.set_telemetry(telemetry.clone());
    grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }
    telemetry.flush();

    // Narrate the fault history from the telemetry stream.
    for e in ring.snapshot() {
        let t = e.t as f64 / 1e6;
        match &e.event {
            Event::AgentDown { resource } => println!("t={t:>5.1}s  {resource} crashed"),
            Event::AgentUp { resource } => println!("t={t:>5.1}s  {resource} restarted"),
            Event::TaskRecovered {
                task,
                resource,
                latency,
            } => println!(
                "t={t:>5.1}s  task {task} recovered onto {resource} ({:.1}s after the loss)",
                *latency as f64 / 1e6
            ),
            Event::RetryExhausted { task, attempts, .. } => {
                println!("t={t:>5.1}s  task {task} exhausted {attempts} attempts")
            }
            _ => {}
        }
    }

    let completed: usize = grid.schedulers().map(|s| s.completed().len()).sum();
    let stats = grid.chaos_stats().expect("chaos layer active");
    println!();
    println!(
        "{completed}/{} tasks completed, {} rejected, {} duplicate completions",
        workload.requests,
        grid.rejected(),
        grid.duplicate_completions()
    );
    println!(
        "{} crash(es), {} message(s) dropped, {} task(s) recovered \
         (mean {:.1}s, max {:.1}s after the loss)",
        stats.crashes,
        stats.dropped_messages,
        stats.recovered_tasks,
        stats.recovery_latency_mean_s,
        stats.recovery_latency_max_s
    );
    assert_eq!(completed, workload.requests, "at-least-once, exactly-once");
    assert_eq!(grid.duplicate_completions(), 0);
}
