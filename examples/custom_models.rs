//! Define your own application models with the PACE model DSL and run
//! them through the grid.
//!
//! ```text
//! cargo run --example custom_models --release
//! ```
//!
//! Real PACE generated application models from annotated source code;
//! this reproduction accepts textual model files instead. The example
//! parses a model file (inline here; `include_str!` or `fs::read_to_string`
//! work the same), builds a catalogue, and runs a small experiment-3 grid
//! over the custom workload.

use agentgrid::prelude::*;
use agentgrid_pace::dsl::{parse_models, render_models};

const MODEL_FILE: &str = "\
# A CFD solver: large parallel phase, modest collective overhead.
app cfd_solver deadline 30 300
  analytic serial 4 parallel 220 comm_log 1.2 comm_linear 0.0

# A graph kernel that stops scaling past a handful of nodes.
app pagerank deadline 10 120
  analytic serial 2 parallel 40 comm_log 0.0 comm_linear 2.5

# A measured table from a profiling run (8 processor counts).
app render_farm deadline 20 240
  table 96 50 35 27 23 21 20 19
";

fn main() {
    let models = parse_models(MODEL_FILE).expect("model file parses");
    println!("parsed {} custom models:", models.len());
    let engine = PaceEngine::new();
    let sgi = ResourceModel::new(Platform::sgi_origin2000(), 16).expect("16 nodes");
    for m in &models {
        let (k, t) = engine.best_time(m, &sgi);
        println!("  {:<12} best {t:.1}s on {k} reference nodes", m.name);
    }
    // The DSL round-trips: what we render parses back identically.
    assert_eq!(parse_models(&render_models(&models)).unwrap(), models);

    let catalog = Catalog::from_models(models);
    let topology = GridTopology {
        resources: vec![
            ResourceSpec {
                name: "hub".into(),
                platform: Platform::sgi_origin2000(),
                nproc: 16,
                parent: None,
            },
            ResourceSpec {
                name: "spoke-1".into(),
                platform: Platform::sun_ultra10(),
                nproc: 16,
                parent: Some("hub".into()),
            },
            ResourceSpec {
                name: "spoke-2".into(),
                platform: Platform::sun_ultra1(),
                nproc: 16,
                parent: Some("hub".into()),
            },
        ],
    };
    let workload = WorkloadConfig {
        requests: 45,
        interarrival: SimDuration::from_secs(2),
        seed: 11,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let mut opts = RunOptions::paper();
    opts.catalog = catalog;
    let result = run_experiment(
        &ExperimentDesign::experiment3(),
        &topology,
        &workload,
        &opts,
    );

    println!();
    println!(
        "ran {} custom-model tasks: e = {:+.1}s, u = {:.1}%, b = {:.1}%, {} migrations",
        result.total.tasks,
        result.total.advance_s,
        result.total.utilisation_pct,
        result.total.balance_pct,
        result.migrations
    );
    println!(
        "deadlines met: {}/{}",
        result.total.deadlines_met, result.total.tasks
    );
}
