//! Host failure and recovery under the resource monitor (paper §2.2).
//!
//! ```text
//! cargo run --example failure_recovery --release
//! ```
//!
//! The paper's resource monitor polls host availability every five
//! minutes; between polls a dead node is still scheduled onto. This
//! example scripts a mid-run failure of half a resource's nodes and a
//! later recovery, and shows the scheduler absorbing both: queued work is
//! re-planned onto surviving nodes at the poll that observes the failure,
//! and spreads back out after the recovery poll.
//!
//! This is the *node*-level fault model: the resource stays up, keeps
//! its queue, and merely re-plans onto fewer processors — no task is
//! ever lost, so no recovery protocol is needed. For whole-resource
//! crashes, lossy links and the at-least-once re-submission machinery
//! that handles actually *losing* queued work, see the grid-level chaos
//! layer (`examples/chaos_grid.rs`, DESIGN.md §10).

use agentgrid::prelude::*;
use agentgrid_cluster::monitor::AvailabilityChange;
use std::sync::Arc;

fn main() {
    let resource = GridResource::new("frail", Platform::sun_ultra5(), 8);
    let mut system = SchedulerSystem::new(
        resource,
        PolicyConfig::Ga(GaConfig::default()),
        Arc::new(CachedEngine::new()),
        RngStream::root(13),
    );

    // Script the outage: nodes 4..8 die at t = 60 s and recover at
    // t = 240 s. The monitor polls every 120 s, so the failure is only
    // *observed* at the t = 120 poll — the staleness between polls is
    // the point.
    system.monitor_mut().set_period(SimDuration::from_secs(120));
    for node in 4..8 {
        system.monitor_mut().inject(AvailabilityChange {
            at: SimTime::from_secs(60),
            node,
            up: false,
        });
    }
    for node in 4..8 {
        system.monitor_mut().inject(AvailabilityChange {
            at: SimTime::from_secs(240),
            node,
            up: true,
        });
    }

    // A steady stream of jacobi tasks, one every 20 s for 10 minutes.
    let catalog = Catalog::case_study();
    let jacobi = Arc::new(catalog.by_name("jacobi").expect("catalogued").clone());

    // Tiny hand-rolled event loop over submissions, completions, polls.
    let mut sim: Simulation<Ev> = Simulation::new();
    for i in 0..30u64 {
        sim.schedule(SimTime::from_secs(20 * i), Ev::Submit(i));
    }
    for k in 0..8u64 {
        sim.schedule(SimTime::from_secs(120 * k), Ev::Poll);
    }

    enum Ev {
        Submit(u64),
        Poll,
        Done(TaskId),
    }

    while let Some(ev) = sim.step() {
        let now = sim.now();
        let started = match ev {
            Ev::Submit(i) => {
                let task = Task::new(
                    TaskId(i),
                    jacobi.clone(),
                    now,
                    now + SimDuration::from_secs(150),
                    ExecEnv::Test,
                );
                system.submit(task, now).expect("test env supported")
            }
            Ev::Poll => {
                let avail_before = system.resource().available_mask().count();
                let started = system.on_monitor_poll(now);
                let avail_after = system.resource().available_mask().count();
                if avail_before != avail_after {
                    println!(
                        "t={:>4.0}s  poll observed availability change: {avail_before} -> {avail_after} nodes",
                        now.as_secs_f64()
                    );
                }
                started
            }
            Ev::Done(id) => system.on_task_complete(id, now),
        };
        for s in started {
            sim.schedule(s.completion, Ev::Done(s.id));
        }
    }

    let completed = system.completed();
    let during_outage = completed
        .iter()
        .filter(|c| c.start >= SimTime::from_secs(120) && c.completion <= SimTime::from_secs(360))
        .collect::<Vec<_>>();
    println!();
    println!("{} tasks completed in total", completed.len());
    println!(
        "{} tasks ran fully inside the observed outage window [120s, 360s]",
        during_outage.len()
    );
    let widest = during_outage
        .iter()
        .map(|c| c.mask.count())
        .max()
        .unwrap_or(0);
    println!("widest allocation inside the outage: {widest} nodes (capacity was 4)");
    assert!(
        widest <= 4,
        "scheduler must not use dead nodes once observed"
    );
    let met = completed.iter().filter(|c| c.met_deadline()).count();
    println!("{met}/{} deadlines met despite the outage", completed.len());
}
