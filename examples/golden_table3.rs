//! Regenerate the golden Table 3 snapshot used by `tests/golden.rs`.
//!
//! The golden fixture pins the *behaviour* of the whole stack — workload
//! generation, discovery, GA scheduling, metrics — for a small grid, so
//! that pure-performance refactors (id interning, the timing-wheel event
//! queue, incremental bookkeeping) can prove they did not move a single
//! scheduling decision:
//!
//! ```text
//! cargo run --release --example golden_table3 > tests/golden_table3.json
//! ```
//!
//! Only regenerate when a change is *meant* to alter results; the diff is
//! the review artefact.

use agentgrid::prelude::*;

fn main() {
    let topology = GridTopology::flat(3, 4);
    let workload = WorkloadConfig {
        requests: 25,
        interarrival: SimDuration::from_secs(1),
        seed: 77,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let results = run_table3(&topology, &workload, &RunOptions::fast());
    println!("{}", results.to_json());
}
