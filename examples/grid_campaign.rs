//! A scaled-down version of the paper's full case study (§4).
//!
//! ```text
//! cargo run --example grid_campaign --release
//! ```
//!
//! Runs all three Table 2 experiments over the identical seeded workload
//! on the Fig. 7 twelve-resource grid (with a reduced request count so
//! the example finishes in a second) and prints the Table 3 layout plus
//! the Fig. 8–10 trend lines for the grid total.

use agentgrid::prelude::*;
use agentgrid::result::FigureMetric;

fn main() {
    let topology = GridTopology::case_study();
    let mut workload = WorkloadConfig::case_study(topology.names(), 2003);
    workload.requests = 180; // scaled down from the paper's 600

    println!(
        "grid: {} resources, {} nodes; workload: {} requests at 1/s, seed {}",
        topology.resources.len(),
        topology.total_nodes(),
        workload.requests,
        workload.seed
    );
    println!();

    let results = run_table3(&topology, &workload, &RunOptions::paper());
    print!("{}", results.table3());
    println!();

    for (fig, label, metric) in [
        (8, "advance time e (s)", FigureMetric::AdvanceTime),
        (9, "utilisation u (%)", FigureMetric::Utilisation),
        (10, "balance b (%)", FigureMetric::Balance),
    ] {
        let series = results.figure_series(metric);
        let (_, totals) = series.last().expect("total series present");
        println!(
            "Fig.{fig:<3} {label:<22} exp1 {:>8.1}   exp2 {:>8.1}   exp3 {:>8.1}",
            totals[0], totals[1], totals[2]
        );
    }
    println!();
    for e in &results.experiments {
        println!(
            "exp {}: {} tasks, horizon {:.0}s, {} migrations, {} advert messages",
            e.design.number, e.total.tasks, e.horizon_s, e.migrations, e.pull_messages
        );
    }

    // A windowed view of the slowest resource under experiment 3: rerun
    // exp 3 keeping the grid, and print S12's utilisation timeline.
    println!();
    println!("S12 utilisation timeline under experiment 3 (60 s windows):");
    let opts = RunOptions::paper();
    let mut config = GridConfig::new(LocalPolicy::Ga, true, workload.seed);
    config.ga = opts.ga;
    let mut grid = GridSystem::new(&topology, &opts.catalog, &config);
    let mut sim = Simulation::new();
    grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }
    let s12 = &grid.scheduler("S12").unwrap();
    let series = agentgrid_metrics::utilisation_series(
        s12.resource().allocations(),
        s12.resource().nproc(),
        grid.horizon(),
        60.0,
    );
    for w in series {
        let bar = "#".repeat((w.utilisation * 40.0).round() as usize);
        println!(
            "  t={:>4.0}s {:>5.1}% {bar}",
            w.start_s,
            w.utilisation * 100.0
        );
    }
}
