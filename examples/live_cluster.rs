//! Run the scheduler against *real* concurrent execution (not test mode).
//!
//! ```text
//! cargo run --example live_cluster --release
//! ```
//!
//! The paper's experiments use test mode (predictions assumed accurate);
//! this example shows the other execution backend: every scheduled task
//! is actually launched on an OS thread via [`ThreadedExecutor`], with
//! wall-clock durations scaled down 1000× from the predicted seconds. The
//! virtual schedule and the real executions are then reconciled.

use agentgrid::prelude::*;
use agentgrid_cluster::{Executor, ThreadedExecutor};
use std::sync::Arc;

fn main() {
    let resource = GridResource::new("live", Platform::sgi_origin2000(), 8);
    let mut system = SchedulerSystem::new(
        resource,
        PolicyConfig::Ga(GaConfig::default()),
        Arc::new(CachedEngine::new()),
        RngStream::root(99),
    );
    // 1 predicted second = 1 real millisecond.
    let executor = ThreadedExecutor::new(1e-3);

    let catalog = Catalog::case_study();
    let mut started = Vec::new();
    for (i, app) in catalog.apps().iter().cycle().take(20).enumerate() {
        let (lo, hi) = app.deadline_bounds_s;
        let task = Task::new(
            TaskId(i as u64),
            Arc::new(app.clone()),
            SimTime::ZERO,
            SimTime::from_secs_f64((lo + hi) / 2.0),
            ExecEnv::Mpi,
        );
        started.extend(system.submit(task, SimTime::ZERO).expect("mpi supported"));
    }

    // Drive virtual time; launch each started task for real.
    let mut launched = 0usize;
    while !started.is_empty() {
        started.sort_by_key(|s: &agentgrid_scheduler::StartedTask| (s.completion, s.id.0));
        let next = started.remove(0);
        let duration_s = next.completion.saturating_since(next.start).as_secs_f64();
        executor.launch(next.id.0, ExecEnv::Mpi, duration_s);
        launched += 1;
        started.extend(system.on_task_complete(next.id, next.completion));
    }

    // Wait for the real threads and reconcile.
    executor.join_all();
    let completed_real = executor.completed();
    println!("scheduled and really executed {launched} tasks on OS threads");
    println!(
        "virtual makespan: {:.0} predicted seconds; all {} real executions finished",
        system
            .completed()
            .iter()
            .map(|c| c.completion)
            .fold(SimTime::ZERO, SimTime::max)
            .as_secs_f64(),
        completed_real.len()
    );
    assert_eq!(completed_real.len(), launched);

    let met = system
        .completed()
        .iter()
        .filter(|c| c.met_deadline())
        .count();
    println!("{met}/{} predicted deadlines met", system.completed().len());
}
