//! Drive one performance-driven local scheduler directly (paper §2).
//!
//! ```text
//! cargo run --example local_scheduler --release
//! ```
//!
//! Uses the scheduler system without any agents: submits a burst of the
//! seven case-study kernels to a single 16-node resource under FIFO and
//! under the GA, and prints the resulting Gantt summary and cost
//! comparison — the paper's §2 story in miniature.

use agentgrid::prelude::*;
use agentgrid_scheduler::Gantt;
use std::sync::Arc;

fn build(policy: PolicyConfig) -> SchedulerSystem {
    let resource = GridResource::new("local", Platform::sgi_origin2000(), 16);
    SchedulerSystem::new(
        resource,
        policy,
        Arc::new(CachedEngine::new()),
        RngStream::root(7),
    )
}

/// Submit one task per case-study kernel plus a second wave, drive the
/// system to quiescence, and report.
fn run(label: &str, mut system: SchedulerSystem) {
    let catalog = Catalog::case_study();
    let mut started = Vec::new();
    let mut id = 0u64;
    // Two waves of all seven kernels, all submitted at t = 0, deadlines
    // at the midpoint of each kernel's Table 1 domain.
    for _wave in 0..2 {
        for app in catalog.apps() {
            let (lo, hi) = app.deadline_bounds_s;
            let deadline = SimTime::from_secs_f64((lo + hi) / 2.0);
            let task = Task::new(
                TaskId(id),
                Arc::new(app.clone()),
                SimTime::ZERO,
                deadline,
                ExecEnv::Test,
            );
            id += 1;
            started.extend(
                system
                    .submit(task, SimTime::ZERO)
                    .expect("test env supported"),
            );
        }
    }
    // Event loop: deliver completions in time order.
    while !started.is_empty() {
        started.sort_by_key(|s: &agentgrid_scheduler::StartedTask| (s.completion, s.id.0));
        let next = started.remove(0);
        started.extend(system.on_task_complete(next.id, next.completion));
    }

    let makespan = system
        .completed()
        .iter()
        .map(|c| c.completion)
        .fold(SimTime::ZERO, SimTime::max);
    let met = system
        .completed()
        .iter()
        .filter(|c| c.met_deadline())
        .count();
    let mean_advance: f64 = system
        .completed()
        .iter()
        .map(|c| c.advance_s())
        .sum::<f64>()
        / system.completed().len() as f64;

    println!("== {label} ==");
    println!(
        "  {} tasks, makespan {:.0}s, {met} deadlines met, mean advance {mean_advance:+.1}s",
        system.completed().len(),
        makespan.as_secs_f64()
    );
    let mut by_start: Vec<_> = system.completed().to_vec();
    by_start.sort_by_key(|c| (c.start, c.task.id.0));
    for c in &by_start {
        println!(
            "  {:>4} {:<8} nodes {:<24} t = {:>5.0} .. {:>5.0}  ({})",
            c.task.id.to_string(),
            c.task.app.name,
            c.mask.to_string(),
            c.start.as_secs_f64(),
            c.completion.as_secs_f64(),
            if c.met_deadline() { "on time" } else { "LATE" },
        );
    }
    // Fig. 2 style Gantt chart of the run.
    let gantt = Gantt::from_completed(&by_start, system.resource().nproc());
    println!("{}", gantt.to_ascii(72));
    let svg_name = format!(
        "gantt_{}.svg",
        label.split_whitespace().next().unwrap_or("run")
    );
    std::fs::write(&svg_name, gantt.to_svg(900, 14)).expect("write SVG");
    println!("  wrote {svg_name}");
    println!();
}

fn main() {
    run("FIFO baseline", build(PolicyConfig::Fifo));
    run("GA scheduler", build(PolicyConfig::Ga(GaConfig::default())));
}
