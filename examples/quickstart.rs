//! Quickstart: build a small grid, run one experiment, read the metrics.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! This walks the whole public surface in ~40 lines: a topology, a seeded
//! workload, the GA + agent-discovery configuration (the paper's
//! experiment 3), and the §3.3 metrics report.

use agentgrid::prelude::*;

fn main() {
    // A small heterogeneous grid: one fast head, two mid-range resources.
    let topology = GridTopology {
        resources: vec![
            ResourceSpec {
                name: "head".into(),
                platform: Platform::sgi_origin2000(),
                nproc: 8,
                parent: None,
            },
            ResourceSpec {
                name: "lab-a".into(),
                platform: Platform::sun_ultra5(),
                nproc: 8,
                parent: Some("head".into()),
            },
            ResourceSpec {
                name: "lab-b".into(),
                platform: Platform::sun_ultra1(),
                nproc: 8,
                parent: Some("head".into()),
            },
        ],
    };

    // 60 requests, one per second, aimed at random agents. The seed makes
    // the run exactly reproducible.
    let workload = WorkloadConfig {
        requests: 60,
        interarrival: SimDuration::from_secs(1),
        seed: 42,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };

    // Experiment 3 = GA local scheduling + agent-based discovery.
    let design = ExperimentDesign::experiment3();
    let result = run_experiment(&design, &topology, &workload, &RunOptions::paper());

    println!("{}", design.label());
    println!(
        "completed {} tasks in {:.0} virtual seconds ({} migrated by agents)",
        result.total.tasks, result.horizon_s, result.migrations
    );
    for row in &result.per_resource {
        println!(
            "  {:<6}  advance {:>7.1}s   utilisation {:>5.1}%   balance {:>5.1}%",
            row.name, row.metrics.advance_s, row.metrics.utilisation_pct, row.metrics.balance_pct
        );
    }
    println!(
        "  total   advance {:>7.1}s   utilisation {:>5.1}%   balance {:>5.1}%",
        result.total.advance_s, result.total.utilisation_pct, result.total.balance_pct
    );
    println!(
        "evaluation cache: {:.1}% hits over the run",
        result.cache_hit_ratio * 100.0
    );
}
