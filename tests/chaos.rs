//! Integration: the fault-injection and recovery layer (DESIGN.md §10).
//!
//! The chaos layer claims three invariants:
//!
//! 1. **At-least-once, exactly-once-counted** — under any fault plan
//!    whose crashes all recover before the horizon, every submitted task
//!    completes exactly once (the completion-dedup set absorbs the
//!    at-least-once re-submissions).
//! 2. **Determinism** — two runs with the same workload seed and the
//!    same plan produce identical telemetry streams (host-clock GA
//!    fields normalised out).
//! 3. **Strict no-op when disabled** — an empty [`FaultPlan`] leaves
//!    every legacy code path untouched (`tests/golden.rs` pins the
//!    byte-identical output; here we pin the absence of chaos state).

use agentgrid::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// GA telemetry carries host-clock observations (wall time, eval
/// throughput) that legitimately differ between identical virtual-time
/// runs; zero them before comparing streams.
fn normalise(mut events: Vec<TimedEvent>) -> Vec<TimedEvent> {
    for e in &mut events {
        match &mut e.event {
            Event::GaEvolve { wall_us, .. } => *wall_us = 0,
            Event::GaHotPath {
                evals_per_sec,
                pool_utilisation,
                ..
            } => {
                *evals_per_sec = 0.0;
                *pool_utilisation = 0.0;
            }
            _ => {}
        }
    }
    events
}

struct ChaosRun {
    grid: GridSystem,
    events: Vec<TimedEvent>,
    completed: usize,
}

fn run_chaos(
    topology: &GridTopology,
    requests: Vec<GeneratedRequest>,
    seed: u64,
    plan: FaultPlan,
    policy: FailurePolicy,
) -> ChaosRun {
    let opts = RunOptions::fast();
    let ring = Arc::new(RingRecorder::unbounded());
    let telemetry = Telemetry::new(ring.clone());
    let design = ExperimentDesign::experiment3();
    let mut config = GridConfig::new(design.local_policy, design.agents_enabled, seed);
    config.ga = opts.ga;
    config.failure_policy = policy;
    config.telemetry = telemetry.clone();
    config.chaos = plan;
    let mut grid = GridSystem::new(topology, &opts.catalog, &config);
    let mut sim = Simulation::new();
    sim.set_telemetry(telemetry.clone());
    grid.bootstrap(&mut sim, requests);
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }
    assert!(!grid.work_remains(), "run ended with work outstanding");
    telemetry.flush();
    let completed = grid.schedulers().map(|s| s.completed().len()).sum();
    ChaosRun {
        grid,
        events: ring.snapshot(),
        completed,
    }
}

fn workload(topology: &GridTopology, requests: usize, seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        requests,
        interarrival: SimDuration::from_secs(1),
        seed,
        agents: topology.names(),
        environment: ExecEnv::Test,
    }
}

fn kinds(events: &[TimedEvent]) -> BTreeSet<&str> {
    events.iter().map(|e| e.event.kind()).collect()
}

#[test]
fn scripted_crash_recovers_every_task() {
    let topology = GridTopology::flat(3, 8);
    let wl = workload(&topology, 30, 7);
    let plan = FaultPlan::none()
        .with_crash("R2", SimTime::from_secs(10), SimTime::from_secs(40))
        .with_act_ttl(SimDuration::from_secs(30))
        .with_dispatch_timeout(SimDuration::from_secs(2));
    let run = run_chaos(
        &topology,
        wl.generate(&RunOptions::fast().catalog),
        wl.seed,
        plan,
        FailurePolicy::BestEffort,
    );

    // Every task completes exactly once despite the mid-run crash.
    assert_eq!(run.completed, 30);
    assert_eq!(run.grid.rejected(), 0);
    assert_eq!(run.grid.duplicate_completions(), 0);

    let stats = run.grid.chaos_stats().expect("chaos layer active");
    assert_eq!(stats.crashes, 1);
    assert!(
        stats.recovered_tasks >= 1,
        "the crash at t=10s must lose queued work: {stats:?}"
    );
    assert!(stats.recovery_latency_max_s > 0.0);

    let k = kinds(&run.events);
    for expected in ["agent_down", "agent_up", "task_recovered"] {
        assert!(k.contains(expected), "missing {expected}; saw {k:?}");
    }
}

#[test]
fn lossy_links_and_pull_loss_still_complete() {
    let topology = GridTopology::flat(3, 4);
    let wl = workload(&topology, 20, 11);
    let plan = FaultPlan::none()
        .with_link_drop("R1", "R2", SimTime::from_secs(5), SimTime::from_secs(25))
        .with_pull_loss(0.3);
    let run = run_chaos(
        &topology,
        wl.generate(&RunOptions::fast().catalog),
        wl.seed,
        plan,
        FailurePolicy::BestEffort,
    );

    assert_eq!(run.completed, 20);
    assert_eq!(run.grid.duplicate_completions(), 0);
    let stats = run.grid.chaos_stats().expect("chaos layer active");
    assert!(
        stats.dropped_messages > 0,
        "30% pull loss over 20s must drop something: {stats:?}"
    );
    assert!(kinds(&run.events).contains("msg_dropped"));
}

#[test]
fn delayed_links_deliver_adverts_late_but_complete() {
    let topology = GridTopology::flat(3, 4);
    let wl = workload(&topology, 15, 23);
    let plan = FaultPlan::none().with_link_delay(
        "R2",
        "R1",
        SimDuration::from_secs(3),
        SimTime::from_secs(2),
        SimTime::from_secs(30),
    );
    let run = run_chaos(
        &topology,
        wl.generate(&RunOptions::fast().catalog),
        wl.seed,
        plan,
        FailurePolicy::BestEffort,
    );
    assert_eq!(run.completed, 15);
    assert_eq!(run.grid.duplicate_completions(), 0);
}

/// `FailurePolicy::Reject`: a request no resource can serve walks the
/// discovery chain, terminates unsuccessfully at the hierarchy head, and
/// the rejection is visible in both the run counters and telemetry.
#[test]
fn reject_policy_terminates_at_the_hierarchy_head() {
    let topology = GridTopology::flat(3, 4);
    // A deadline one tick after arrival is impossible everywhere, so
    // matchmaking fails at every hop and escalation runs out at R1.
    let at = SimTime::from_secs(1);
    let requests = vec![GeneratedRequest {
        at,
        agent: "R3".into(),
        application: "sweep3d".into(),
        deadline: at + SimDuration::from_ticks(1),
        environment: ExecEnv::Test,
    }];
    let run = run_chaos(
        &topology,
        requests,
        3,
        FaultPlan::none(),
        FailurePolicy::Reject,
    );

    assert_eq!(run.completed, 0);
    assert_eq!(run.grid.rejected(), 1, "the impossible request is rejected");
    let reject = run
        .events
        .iter()
        .find_map(|e| match &e.event {
            Event::TaskReject { resource, .. } => Some(resource.clone()),
            _ => None,
        })
        .expect("rejection surfaces in telemetry");
    assert_eq!(reject, "R1", "the search must end at the hierarchy head");
}

#[test]
fn same_seed_chaos_runs_are_bit_identical() {
    let topology = GridTopology::flat(3, 4);
    let wl = workload(&topology, 20, 13);
    let plan = FaultPlan::random(
        99,
        &topology.names(),
        SimTime::from_secs(40),
        2,
        SimDuration::from_secs(20),
    )
    .with_pull_loss(0.2)
    .with_act_ttl(SimDuration::from_secs(30))
    .with_dispatch_timeout(SimDuration::from_secs(2))
    .with_max_retries(24);

    let catalog = RunOptions::fast().catalog;
    let a = run_chaos(
        &topology,
        wl.generate(&catalog),
        wl.seed,
        plan.clone(),
        FailurePolicy::BestEffort,
    );
    let b = run_chaos(
        &topology,
        wl.generate(&catalog),
        wl.seed,
        plan,
        FailurePolicy::BestEffort,
    );

    assert_eq!(normalise(a.events), normalise(b.events));
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.grid.migrations(), b.grid.migrations());
    assert_eq!(a.grid.chaos_stats(), b.grid.chaos_stats());
}

#[test]
fn empty_plan_leaves_the_chaos_layer_dormant() {
    let topology = GridTopology::flat(2, 4);
    let wl = workload(&topology, 10, 5);
    let run = run_chaos(
        &topology,
        wl.generate(&RunOptions::fast().catalog),
        wl.seed,
        FaultPlan::none(),
        FailurePolicy::BestEffort,
    );
    assert_eq!(run.completed, 10);
    // No chaos state exists at all — the legacy paths ran untouched.
    assert!(run.grid.chaos_stats().is_none());
    assert_eq!(run.grid.duplicate_completions(), 0);
    let k = kinds(&run.events);
    for absent in ["agent_down", "agent_up", "msg_dropped", "task_recovered"] {
        assert!(!k.contains(absent), "{absent} leaked from a dormant layer");
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8 })]

        /// The headline invariant: any seeded plan whose crashes all
        /// recover before the horizon completes every task exactly once,
        /// and the whole run is reproducible from its seeds.
        #[test]
        fn recovering_plans_complete_every_task_exactly_once(
            seed in 0u64..500,
            plan_seed in 0u64..500,
            crashes in 0usize..3,
            loss in 0u32..30,
            requests in 5usize..20,
        ) {
            let topology = GridTopology::flat(3, 4);
            let wl = WorkloadConfig {
                requests,
                interarrival: SimDuration::from_secs(2),
                seed,
                agents: topology.names(),
                environment: ExecEnv::Test,
            };
            let plan = FaultPlan::random(
                plan_seed,
                &topology.names(),
                SimTime::from_secs(60),
                crashes,
                SimDuration::from_secs(20),
            )
            .with_pull_loss(loss as f64 / 100.0)
            .with_act_ttl(SimDuration::from_secs(30))
            .with_dispatch_timeout(SimDuration::from_secs(2))
            .with_max_retries(24);

            let catalog = RunOptions::fast().catalog;
            let a = run_chaos(
                &topology,
                wl.generate(&catalog),
                wl.seed,
                plan.clone(),
                FailurePolicy::BestEffort,
            );
            prop_assert_eq!(a.completed, requests, "every task completes");
            prop_assert_eq!(a.grid.rejected(), 0, "retry budget outlasts outages");
            prop_assert_eq!(a.grid.duplicate_completions(), 0, "exactly once");

            let b = run_chaos(
                &topology,
                wl.generate(&catalog),
                wl.seed,
                plan,
                FailurePolicy::BestEffort,
            );
            prop_assert_eq!(normalise(a.events), normalise(b.events));
        }
    }
}
