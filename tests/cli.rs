//! Integration: the `agentgrid` CLI binary end to end.

use std::io::Write;
use std::process::{Command, Stdio};

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_agentgrid"))
        .args(args)
        .output()
        .expect("CLI binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Like [`run`] but with `stdin` piped in — serve mode reads its JSONL
/// stream from standard input.
fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_agentgrid"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("CLI binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin written");
    let out = child.wait_with_output().expect("CLI binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (_, err, ok) = run(&[]);
    assert!(!ok);
    assert!(err.contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let (_, err, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn models_lists_the_catalogue() {
    let (out, _, ok) = run(&["models"]);
    assert!(ok);
    for app in [
        "sweep3d", "fft", "improc", "closure", "jacobi", "memsort", "cpi",
    ] {
        assert!(out.contains(app), "missing {app} in:\n{out}");
    }
}

#[test]
fn topology_describes_the_case_study() {
    let (out, _, ok) = run(&["topology"]);
    assert!(ok);
    assert!(out.contains("12 resources, 192 nodes"));
    assert!(out.contains("HEAD"));
    assert!(out.contains("SGIOrigin2000"));
}

#[test]
fn topology_specs_parse_and_reject() {
    let (out, _, ok) = run(&["topology", "--topology", "tree:3:2:4"]);
    assert!(ok);
    assert!(out.contains("7 resources, 28 nodes"));

    let (_, err, ok) = run(&["topology", "--topology", "moebius:7"]);
    assert!(!ok);
    assert!(err.contains("bad topology spec"));
}

#[test]
fn run_executes_a_small_experiment() {
    let (out, _, ok) = run(&[
        "run",
        "--topology",
        "flat:2:4",
        "--requests",
        "8",
        "--seed",
        "3",
        "--agents",
    ]);
    assert!(ok, "run failed:\n{out}");
    assert!(out.contains("8 tasks over 2 resources"));
    assert!(out.contains("deadlines met"));
}

#[test]
fn run_emits_json_when_asked() {
    let (out, _, ok) = run(&["run", "--topology", "flat:1:2", "--requests", "4", "--json"]);
    assert!(ok);
    let parsed = agentgrid_telemetry::json::Value::parse(&out).expect("valid JSON");
    assert_eq!(parsed.get("requests").and_then(|v| v.as_u64()), Some(4));
}

#[test]
fn run_records_and_report_summarises_a_trace() {
    let dir = std::env::temp_dir().join(format!("agentgrid-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let jsonl = dir.join("trace.jsonl");
    let chrome = dir.join("trace.json");

    let (_, err, ok) = run(&[
        "run",
        "--topology",
        "flat:2:4",
        "--requests",
        "8",
        "--policy",
        "ga",
        "--agents",
        "--trace",
        jsonl.to_str().unwrap(),
    ]);
    assert!(ok, "traced run failed:\n{err}");
    assert!(err.contains("events"));

    // Every line of the JSONL trace is a JSON object with t/kind.
    let text = std::fs::read_to_string(&jsonl).expect("trace written");
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = agentgrid_telemetry::json::Value::parse(line).expect("valid JSONL line");
        assert!(
            v.get("t").is_some() && v.get("type").is_some(),
            "bad line {line}"
        );
    }

    // Chrome format parses as a JSON array of trace_event entries.
    let (_, _, ok) = run(&[
        "run",
        "--topology",
        "flat:2:4",
        "--requests",
        "8",
        "--policy",
        "ga",
        "--agents",
        "--trace",
        chrome.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert!(ok);
    let text = std::fs::read_to_string(&chrome).expect("chrome trace written");
    let v = agentgrid_telemetry::json::Value::parse(&text).expect("valid chrome JSON");
    assert!(!v.as_arr().expect("top-level array").is_empty());

    // `report` summarises the JSONL trace.
    let (out, _, ok) = run(&["report", jsonl.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("event counts"), "report output:\n{out}");
    assert!(out.contains("task_start"), "report output:\n{out}");

    let (_, err, ok) = run(&["report"]);
    assert!(!ok);
    assert!(err.contains("report needs a trace file"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_text_output_matches_the_golden_fixture() {
    // `tests/report_trace.jsonl` is a frozen trace of
    // `run --topology flat:2:4 --requests 8 --seed 42 --policy ga --agents`;
    // the report over it must stay byte-identical to the golden file.
    // Regenerate both with:
    //   agentgrid run --topology flat:2:4 --requests 8 --seed 42 \
    //     --policy ga --agents --trace tests/report_trace.jsonl
    //   agentgrid report tests/report_trace.jsonl > tests/report_golden.txt
    let trace = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/report_trace.jsonl"
    );
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/report_golden.txt");
    let (out, _, ok) = run(&["report", trace]);
    assert!(ok);
    let expected = std::fs::read_to_string(golden).expect("golden fixture readable");
    assert!(
        out == expected,
        "report drifted from tests/report_golden.txt:\n--- expected\n{expected}\n--- got\n{out}"
    );
}

#[test]
fn verify_flag_reports_clean_invariants_and_exits_zero() {
    // The paper run under the online invariant checker: stderr carries
    // the verdict, the exit code stays zero when the stream is clean.
    let (out, err, ok) = run(&["table3", "--requests", "12", "--seed", "5", "--verify"]);
    assert!(ok, "table3 --verify failed:\n{err}");
    assert!(out.contains("Exp 1"), "table3 output:\n{out}");
    assert!(
        err.contains("invariants: clean"),
        "verdict missing from stderr:\n{err}"
    );

    let (_, err, ok) = run(&[
        "run",
        "--topology",
        "flat:2:4",
        "--requests",
        "8",
        "--policy",
        "ga",
        "--agents",
        "--verify",
    ]);
    assert!(ok, "run --verify failed:\n{err}");
    assert!(
        err.contains("invariants: clean"),
        "verdict missing from stderr:\n{err}"
    );
}

#[test]
fn serve_fast_forward_drains_a_piped_stream_with_a_scale_cycle() {
    // The CI smoke in miniature: two requests and a closed down/up scale
    // cycle through `serve --fast-forward --verify`, metrics written out.
    let dir = std::env::temp_dir().join(format!("agentgrid-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("metrics.prom");

    let stream = concat!(
        "# two requests and a planned leave/join of R2\n",
        "{\"app\": \"sweep3d\", \"agent\": \"R1\", \"deadline\": 300, \"at\": 0}\n",
        "{\"app\": \"fft\", \"agent\": \"R2\", \"deadline\": 300, \"at\": 1}\n",
        "{\"scale\": \"down\", \"resource\": \"R2\", \"at\": 5}\n",
        "{\"scale\": \"up\", \"resource\": \"R2\", \"at\": 15}\n",
    );
    let (out, err, ok) = run_with_stdin(
        &[
            "serve",
            "--fast-forward",
            "--topology",
            "flat:2:2",
            "--agents",
            "--verify",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
        stream,
    );
    assert!(ok, "serve failed:\nstdout:\n{out}\nstderr:\n{err}");
    assert!(
        out.contains("served 2 requests (2 completed, 0 rejected), 2 scale directives"),
        "serve summary missing:\n{out}"
    );
    assert!(
        err.contains("invariants: clean"),
        "verify verdict missing from stderr:\n{err}"
    );

    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(!text.is_empty());
    assert!(
        text.contains("agentgrid_events_total{kind=\"scale_directive\"} 2"),
        "metrics must record the scale cycle:\n{text}"
    );
    assert!(text.contains("agentgrid_completed_tasks 2"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_fast_forward_rejects_a_malformed_stream() {
    let (_, err, ok) = run_with_stdin(
        &["serve", "--fast-forward", "--topology", "flat:2:2"],
        "{\"app\": \"sweep3d\"}\n",
    );
    assert!(!ok, "malformed stream must fail fast in fast-forward");
    assert!(
        err.contains("line 1") && err.contains("agent"),
        "error must name the line and the missing field:\n{err}"
    );
}

#[test]
fn serve_emits_json_when_asked() {
    let (out, _, ok) = run_with_stdin(
        &[
            "serve",
            "--fast-forward",
            "--topology",
            "flat:2:2",
            "--json",
        ],
        "{\"app\": \"cpi\", \"agent\": \"R1\", \"deadline\": 120}\n",
    );
    assert!(ok);
    let parsed = agentgrid_telemetry::json::Value::parse(&out).expect("valid JSON");
    assert_eq!(parsed.get("requests").and_then(|v| v.as_u64()), Some(1));
}

#[test]
fn serve_wal_flag_combinations_are_validated() {
    let (_, err, ok) = run_with_stdin(
        &[
            "serve",
            "--fast-forward",
            "--topology",
            "flat:2:2",
            "--wal",
            "unused.wal",
        ],
        "",
    );
    assert!(!ok, "--wal with --fast-forward must be refused");
    assert!(err.contains("--wal needs a live drive mode"), "{err}");

    let (_, err, ok) = run(&["serve", "--replay", "x.jsonl", "--wal", "y.wal"]);
    assert!(!ok, "--replay with --wal must be refused");
    assert!(err.contains("--replay re-runs a finished session"), "{err}");
}

#[test]
fn serve_wal_survives_a_restart_and_replays_deterministically() {
    // The full durability cycle at the CLI: a live session with a WAL
    // and a recording, a restart that recovers from the log, and the
    // recorded session replayed twice byte-for-byte.
    let dir = std::env::temp_dir().join(format!("agentgrid-wal-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal = dir.join("serve.wal");
    let rec = dir.join("serve.rec");
    let stream = concat!(
        "{\"app\": \"sweep3d\", \"agent\": \"R1\", \"deadline\": 300, \"at\": 0}\n",
        "{\"app\": \"fft\", \"agent\": \"R2\", \"deadline\": 300, \"at\": 0}\n",
        "{\"app\": \"cpi\", \"agent\": \"R1\", \"deadline\": 300, \"at\": 0}\n",
    );

    let (out, err, ok) = run_with_stdin(
        &[
            "serve",
            "--topology",
            "flat:2:2",
            "--speed",
            "1000",
            "--wal",
            wal.to_str().unwrap(),
            "--record",
            rec.to_str().unwrap(),
        ],
        stream,
    );
    assert!(ok, "live session failed:\nstdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("served 3 requests"), "{out}");
    assert!(
        out.contains("wal: seq 3 (epoch 0, 0 replayed"),
        "wal summary missing:\n{out}"
    );

    // Every accepted line landed in the log as a checksummed record.
    let text = std::fs::read_to_string(&wal).expect("wal written");
    assert_eq!(text.lines().count(), 3, "{text}");
    for line in text.lines() {
        let v = agentgrid_telemetry::json::Value::parse(line).expect("wal record is JSON");
        assert!(v.get("seq").is_some() && v.get("sum").is_some(), "{line}");
    }
    // The recording opens with its self-describing header.
    let rtext = std::fs::read_to_string(&rec).expect("recording written");
    assert!(
        rtext.lines().next().unwrap_or("").contains("\"record\""),
        "{rtext}"
    );
    assert_eq!(rtext.lines().count(), 4, "header + three lines:\n{rtext}");

    // Restart on the same log: the session recovers all three lines.
    let (out, err, ok) = run_with_stdin(
        &[
            "serve",
            "--topology",
            "flat:2:2",
            "--speed",
            "1000",
            "--wal",
            wal.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok, "restart failed:\nstdout:\n{out}\nstderr:\n{err}");
    assert!(
        out.contains("wal: seq 3 (epoch 1, 3 replayed"),
        "recovery summary missing:\n{out}"
    );
    assert!(out.contains("served 3 requests"), "{out}");

    // The recording replays deterministically (header restores flags).
    let (a, err, ok) = run(&["serve", "--replay", rec.to_str().unwrap(), "--json"]);
    assert!(ok, "replay failed:\n{err}");
    let (b, _, ok) = run(&["serve", "--replay", rec.to_str().unwrap(), "--json"]);
    assert!(ok);
    assert_eq!(a, b, "two replays of the same recording diverged");
    let parsed = agentgrid_telemetry::json::Value::parse(&a).expect("valid JSON");
    assert_eq!(parsed.get("requests").and_then(|v| v.as_u64()), Some(3));

    // The raw WAL is itself replayable (headerless, explicit flags).
    let (c, err, ok) = run(&[
        "serve",
        "--replay",
        wal.to_str().unwrap(),
        "--topology",
        "flat:2:2",
        "--json",
    ]);
    assert!(ok, "wal replay failed:\n{err}");
    let parsed = agentgrid_telemetry::json::Value::parse(&c).expect("valid JSON");
    assert_eq!(parsed.get("requests").and_then(|v| v.as_u64()), Some(3));

    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_and_flushes_the_wal() {
    // SIGTERM mid-session must run the same graceful drain as stdin
    // EOF: finish what was accepted, flush the log, report the seq.
    let dir = std::env::temp_dir().join(format!("agentgrid-term-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal = dir.join("term.wal");

    let mut child = Command::new(env!("CARGO_BIN_EXE_agentgrid"))
        .args([
            "serve",
            "--topology",
            "flat:2:2",
            "--speed",
            "1000",
            "--wal",
            wal.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("CLI binary spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin
        .write_all(b"{\"app\": \"sweep3d\", \"agent\": \"R1\", \"deadline\": 300, \"at\": 0}\n{\"app\": \"fft\", \"agent\": \"R2\", \"deadline\": 300, \"at\": 0}\n")
        .expect("stdin written");
    stdin.flush().expect("stdin flushed");
    // Keep stdin open: only the signal may end this session.
    std::thread::sleep(std::time::Duration::from_millis(700));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let out = child.wait_with_output().expect("CLI binary exits");
    drop(stdin);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "SIGTERM exit not clean:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("served 2 requests"),
        "accepted lines must finish before exit:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("wal: seq 2"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_are_reported() {
    let (_, err, ok) = run(&["run", "--policy", "quantum"]);
    assert!(!ok);
    assert!(err.contains("unknown policy"));

    let (_, err, ok) = run(&["run", "--requests"]);
    assert!(!ok);
    assert!(err.contains("needs a value"));
}
