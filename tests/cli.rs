//! Integration: the `agentgrid` CLI binary end to end.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_agentgrid"))
        .args(args)
        .output()
        .expect("CLI binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (_, err, ok) = run(&[]);
    assert!(!ok);
    assert!(err.contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let (_, err, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn models_lists_the_catalogue() {
    let (out, _, ok) = run(&["models"]);
    assert!(ok);
    for app in [
        "sweep3d", "fft", "improc", "closure", "jacobi", "memsort", "cpi",
    ] {
        assert!(out.contains(app), "missing {app} in:\n{out}");
    }
}

#[test]
fn topology_describes_the_case_study() {
    let (out, _, ok) = run(&["topology"]);
    assert!(ok);
    assert!(out.contains("12 resources, 192 nodes"));
    assert!(out.contains("HEAD"));
    assert!(out.contains("SGIOrigin2000"));
}

#[test]
fn topology_specs_parse_and_reject() {
    let (out, _, ok) = run(&["topology", "--topology", "tree:3:2:4"]);
    assert!(ok);
    assert!(out.contains("7 resources, 28 nodes"));

    let (_, err, ok) = run(&["topology", "--topology", "moebius:7"]);
    assert!(!ok);
    assert!(err.contains("bad topology spec"));
}

#[test]
fn run_executes_a_small_experiment() {
    let (out, _, ok) = run(&[
        "run",
        "--topology",
        "flat:2:4",
        "--requests",
        "8",
        "--seed",
        "3",
        "--agents",
    ]);
    assert!(ok, "run failed:\n{out}");
    assert!(out.contains("8 tasks over 2 resources"));
    assert!(out.contains("deadlines met"));
}

#[test]
fn run_emits_json_when_asked() {
    let (out, _, ok) = run(&["run", "--topology", "flat:1:2", "--requests", "4", "--json"]);
    assert!(ok);
    let parsed = agentgrid_telemetry::json::Value::parse(&out).expect("valid JSON");
    assert_eq!(parsed.get("requests").and_then(|v| v.as_u64()), Some(4));
}

#[test]
fn run_records_and_report_summarises_a_trace() {
    let dir = std::env::temp_dir().join(format!("agentgrid-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let jsonl = dir.join("trace.jsonl");
    let chrome = dir.join("trace.json");

    let (_, err, ok) = run(&[
        "run",
        "--topology",
        "flat:2:4",
        "--requests",
        "8",
        "--policy",
        "ga",
        "--agents",
        "--trace",
        jsonl.to_str().unwrap(),
    ]);
    assert!(ok, "traced run failed:\n{err}");
    assert!(err.contains("events"));

    // Every line of the JSONL trace is a JSON object with t/kind.
    let text = std::fs::read_to_string(&jsonl).expect("trace written");
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = agentgrid_telemetry::json::Value::parse(line).expect("valid JSONL line");
        assert!(
            v.get("t").is_some() && v.get("type").is_some(),
            "bad line {line}"
        );
    }

    // Chrome format parses as a JSON array of trace_event entries.
    let (_, _, ok) = run(&[
        "run",
        "--topology",
        "flat:2:4",
        "--requests",
        "8",
        "--policy",
        "ga",
        "--agents",
        "--trace",
        chrome.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert!(ok);
    let text = std::fs::read_to_string(&chrome).expect("chrome trace written");
    let v = agentgrid_telemetry::json::Value::parse(&text).expect("valid chrome JSON");
    assert!(!v.as_arr().expect("top-level array").is_empty());

    // `report` summarises the JSONL trace.
    let (out, _, ok) = run(&["report", jsonl.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("event counts"), "report output:\n{out}");
    assert!(out.contains("task_start"), "report output:\n{out}");

    let (_, err, ok) = run(&["report"]);
    assert!(!ok);
    assert!(err.contains("report needs a trace file"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_text_output_matches_the_golden_fixture() {
    // `tests/report_trace.jsonl` is a frozen trace of
    // `run --topology flat:2:4 --requests 8 --seed 42 --policy ga --agents`;
    // the report over it must stay byte-identical to the golden file.
    // Regenerate both with:
    //   agentgrid run --topology flat:2:4 --requests 8 --seed 42 \
    //     --policy ga --agents --trace tests/report_trace.jsonl
    //   agentgrid report tests/report_trace.jsonl > tests/report_golden.txt
    let trace = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/report_trace.jsonl"
    );
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/report_golden.txt");
    let (out, _, ok) = run(&["report", trace]);
    assert!(ok);
    let expected = std::fs::read_to_string(golden).expect("golden fixture readable");
    assert!(
        out == expected,
        "report drifted from tests/report_golden.txt:\n--- expected\n{expected}\n--- got\n{out}"
    );
}

#[test]
fn verify_flag_reports_clean_invariants_and_exits_zero() {
    // The paper run under the online invariant checker: stderr carries
    // the verdict, the exit code stays zero when the stream is clean.
    let (out, err, ok) = run(&["table3", "--requests", "12", "--seed", "5", "--verify"]);
    assert!(ok, "table3 --verify failed:\n{err}");
    assert!(out.contains("Exp 1"), "table3 output:\n{out}");
    assert!(
        err.contains("invariants: clean"),
        "verdict missing from stderr:\n{err}"
    );

    let (_, err, ok) = run(&[
        "run",
        "--topology",
        "flat:2:4",
        "--requests",
        "8",
        "--policy",
        "ga",
        "--agents",
        "--verify",
    ]);
    assert!(ok, "run --verify failed:\n{err}");
    assert!(
        err.contains("invariants: clean"),
        "verdict missing from stderr:\n{err}"
    );
}

#[test]
fn bad_flags_are_reported() {
    let (_, err, ok) = run(&["run", "--policy", "quantum"]);
    assert!(!ok);
    assert!(err.contains("unknown policy"));

    let (_, err, ok) = run(&["run", "--requests"]);
    assert!(!ok);
    assert!(err.contains("needs a value"));
}
