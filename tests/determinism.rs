//! Integration: bit-for-bit reproducibility.
//!
//! The paper relies on "the seed is set to the same so that the workload
//! for each experiment is identical"; we additionally guarantee that the
//! *entire run* — GA evolution included — is a pure function of the seed.

use agentgrid::prelude::*;

/// Zero the host wall-clock fields (`wall_us`, `evals_per_sec`) so two
/// telemetry streams of the same run compare equal: host timing is the
/// one thing no replay can reproduce.
fn scrub_wall_clock(events: Vec<TimedEvent>) -> Vec<TimedEvent> {
    events
        .into_iter()
        .map(|mut te| {
            match &mut te.event {
                Event::GaEvolve { wall_us, .. } => *wall_us = 0,
                Event::GaHotPath { evals_per_sec, .. } => *evals_per_sec = 0.0,
                _ => {}
            }
            te
        })
        .collect()
}

fn small() -> (GridTopology, WorkloadConfig) {
    let topology = GridTopology::flat(3, 4);
    let workload = WorkloadConfig {
        requests: 25,
        interarrival: SimDuration::from_secs(1),
        seed: 77,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    (topology, workload)
}

#[test]
fn identical_seeds_give_identical_results() {
    let (topology, workload) = small();
    let design = ExperimentDesign::experiment3();
    let a = run_experiment(&design, &topology, &workload, &RunOptions::fast());
    let b = run_experiment(&design, &topology, &workload, &RunOptions::fast());
    assert_eq!(a, b);
    // Strong form: serialised bytes match.
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn telemetry_does_not_perturb_the_run() {
    // Recording a full trace must not change a single scheduling
    // decision: the instrumented run's results are byte-identical to the
    // uninstrumented run with the same seed.
    let (topology, workload) = small();
    let design = ExperimentDesign::experiment3();
    let plain = run_experiment(&design, &topology, &workload, &RunOptions::fast());

    let ring = std::sync::Arc::new(RingRecorder::unbounded());
    let mut opts = RunOptions::fast();
    opts.telemetry = Telemetry::new(ring.clone());
    let traced = run_experiment(&design, &topology, &workload, &opts);

    assert_eq!(plain, traced);
    assert_eq!(plain.to_json(), traced.to_json());
    assert!(
        !ring.snapshot().is_empty(),
        "the trace must actually record"
    );
}

#[test]
fn ga_threads_do_not_perturb_the_run() {
    // Parallel fitness evaluation must not change a single scheduling
    // decision: costs land in per-index slots and every RNG draw stays
    // on the driving thread, so any thread count reproduces the
    // sequential run byte for byte.
    let (topology, workload) = small();
    let design = ExperimentDesign::experiment3();
    let mut opts = RunOptions::fast();
    opts.ga.threads = 1;
    let sequential = run_experiment(&design, &topology, &workload, &opts);
    for threads in [2, 4, 8] {
        let mut opts = RunOptions::fast();
        opts.ga.threads = threads;
        let parallel = run_experiment(&design, &topology, &workload, &opts);
        assert_eq!(sequential, parallel, "threads={threads}");
        assert_eq!(
            sequential.to_json(),
            parallel.to_json(),
            "threads={threads}"
        );
    }
}

#[test]
fn scratch_reuse_does_not_perturb_the_run() {
    // The allocation-free decode path must be a pure mechanical change:
    // reusing scratch buffers reproduces the fresh-allocation run byte
    // for byte.
    let (topology, workload) = small();
    let design = ExperimentDesign::experiment3();
    let mut opts = RunOptions::fast();
    opts.ga.reuse_scratch = false;
    let fresh = run_experiment(&design, &topology, &workload, &opts);
    let mut opts = RunOptions::fast();
    opts.ga.reuse_scratch = true;
    let reused = run_experiment(&design, &topology, &workload, &opts);
    assert_eq!(fresh, reused);
    assert_eq!(fresh.to_json(), reused.to_json());
}

#[test]
fn shards_do_not_perturb_the_run() {
    // Sharded pull batching must not change a single scheduling decision
    // or telemetry event: the merge barrier replays every batch window
    // in `(time, seq)` order, so any shard/worker count reproduces the
    // sequential loop byte for byte. 85 agents put the bootstrap pull
    // wave over the inline threshold, so the scoped-thread path runs.
    let topology = GridTopology::tree(4, 4, 2);
    let workload = WorkloadConfig {
        requests: 40,
        interarrival: SimDuration::from_secs(1),
        seed: 2003,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let design = ExperimentDesign::experiment3();
    let run = |shards: usize, workers: Option<usize>| {
        let ring = std::sync::Arc::new(RingRecorder::unbounded());
        let mut opts = RunOptions::fast();
        opts.shards = shards;
        opts.shard_workers = workers;
        opts.telemetry = Telemetry::new(ring.clone());
        let result = run_experiment(&design, &topology, &workload, &opts);
        (result, scrub_wall_clock(ring.snapshot()))
    };
    let (sequential, sequential_events) = run(1, None);
    assert!(!sequential_events.is_empty());
    for (shards, workers) in [(2, None), (4, Some(1)), (4, Some(3)), (8, None)] {
        let (sharded, events) = run(shards, workers);
        assert_eq!(sequential, sharded, "shards={shards} workers={workers:?}");
        assert_eq!(sequential.to_json(), sharded.to_json(), "shards={shards}");
        assert_eq!(
            sequential_events, events,
            "shards={shards} workers={workers:?}: telemetry must match"
        );
    }
}

#[test]
fn every_zoo_policy_is_invariant_in_threads_and_shards() {
    // The LocalPolicy contract (DESIGN.md §15): every zoo entrant is a
    // pure function of the seed, so neither the GA thread count nor the
    // shard/worker split of the event loop may change a single byte of
    // the result. This is the generalisation of
    // `ga_threads_do_not_perturb_the_run` / `shards_do_not_perturb_the_run`
    // to the whole policy zoo.
    let (topology, workload) = small();
    for policy in PolicyKind::ALL {
        let design = ExperimentDesign {
            number: 0,
            local_policy: policy,
            agents_enabled: true,
        };
        let run = |threads: usize, shards: usize, workers: Option<usize>| {
            let mut opts = RunOptions::fast();
            opts.ga.threads = threads;
            opts.shards = shards;
            opts.shard_workers = workers;
            run_experiment(&design, &topology, &workload, &opts)
        };
        let baseline = run(1, 1, None);
        assert_eq!(
            baseline.total.tasks,
            workload.requests,
            "{}: not every request ran",
            policy.token()
        );
        for (threads, shards, workers) in [(4, 1, None), (1, 4, Some(2)), (8, 2, Some(3))] {
            let variant = run(threads, shards, workers);
            assert_eq!(
                baseline,
                variant,
                "{}: threads={threads} shards={shards} workers={workers:?}",
                policy.token()
            );
            assert_eq!(
                baseline.to_json(),
                variant.to_json(),
                "{}: serialised bytes must match",
                policy.token()
            );
        }
    }
}

#[test]
fn matchmakers_are_deterministic_and_auction_changes_placement() {
    // Each matchmaker is a pure function of the seed; and the auction
    // actually reprices waits (it is not the freetime ranking renamed),
    // so on the heterogeneous case-study grid it must steer at least
    // one request differently from the freetime baseline.
    let topology = GridTopology::from_spec("case-study").unwrap();
    let mut workload = WorkloadConfig::case_study(topology.names(), 2003);
    workload.requests = 240;
    let design = ExperimentDesign::experiment3();
    let run = |kind: MatchmakerKind| {
        let mut opts = RunOptions::fast();
        opts.matchmaker = kind;
        run_experiment(&design, &topology, &workload, &opts)
    };
    for kind in MatchmakerKind::ALL {
        assert_eq!(run(kind), run(kind), "{}: reruns must match", kind.token());
    }
    assert_ne!(
        run(MatchmakerKind::Freetime),
        run(MatchmakerKind::Auction),
        "the auction never changed a placement — is it repricing at all?"
    );
}

#[test]
fn different_seeds_give_different_runs() {
    let (topology, mut workload) = small();
    let design = ExperimentDesign::experiment3();
    let a = run_experiment(&design, &topology, &workload, &RunOptions::fast());
    workload.seed = 78;
    let b = run_experiment(&design, &topology, &workload, &RunOptions::fast());
    assert_ne!(a, b, "seed must drive the whole run");
}

#[test]
fn workload_is_shared_across_designs() {
    // All three experiments must see the same request stream.
    let (_, workload) = small();
    let catalog = Catalog::case_study();
    let r1 = workload.generate(&catalog);
    let r2 = workload.generate(&catalog);
    assert_eq!(r1, r2);
}

#[test]
fn ga_determinism_is_per_resource() {
    // Adding a resource must not change the request stream (streams are
    // derived per label, not drawn from one global sequence).
    let catalog = Catalog::case_study();
    let t3 = GridTopology::flat(3, 4);
    let t4 = GridTopology::flat(4, 4);
    let w3 = WorkloadConfig {
        requests: 10,
        interarrival: SimDuration::from_secs(1),
        seed: 5,
        agents: t3.names(),
        environment: ExecEnv::Test,
    };
    let mut w4 = w3.clone();
    w4.agents = t4.names();
    let r3 = w3.generate(&catalog);
    let r4 = w4.generate(&catalog);
    // Arrival instants are structural (1 s apart) and must agree; the
    // random draws may differ since the agent list changed.
    for (a, b) in r3.iter().zip(&r4) {
        assert_eq!(a.at, b.at);
    }
}

#[test]
fn parallel_table3_matches_sequential() {
    let topology = GridTopology::flat(2, 4);
    let workload = WorkloadConfig {
        requests: 15,
        interarrival: SimDuration::from_secs(1),
        seed: 123,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let sequential = run_table3(&topology, &workload, &RunOptions::fast());
    let parallel = run_table3_parallel(&topology, &workload, &RunOptions::fast());
    assert_eq!(sequential, parallel);
}
