//! Integration: agent-based service discovery across the hierarchy.

use agentgrid::prelude::*;
use agentgrid_sim::trace::TraceKind;

/// A lopsided grid: all requests arrive at a weak leaf; capacity lives at
/// the head.
fn lopsided() -> GridTopology {
    GridTopology {
        resources: vec![
            ResourceSpec {
                name: "head".into(),
                platform: Platform::sgi_origin2000(),
                nproc: 16,
                parent: None,
            },
            ResourceSpec {
                name: "mid".into(),
                platform: Platform::sun_ultra5(),
                nproc: 16,
                parent: Some("head".into()),
            },
            ResourceSpec {
                name: "leaf".into(),
                platform: Platform::sun_sparcstation2(),
                nproc: 4,
                parent: Some("mid".into()),
            },
        ],
    }
}

fn leaf_workload(n: usize) -> WorkloadConfig {
    WorkloadConfig {
        requests: n,
        interarrival: SimDuration::from_secs(1),
        seed: 17,
        agents: vec!["leaf".into()],
        environment: ExecEnv::Test,
    }
}

fn run_grid(
    topology: &GridTopology,
    workload: &WorkloadConfig,
    agents_enabled: bool,
    failure_policy: FailurePolicy,
    trace: bool,
) -> GridSystem {
    let opts = RunOptions::fast();
    let mut config = GridConfig::new(LocalPolicy::Ga, agents_enabled, workload.seed);
    config.ga = opts.ga;
    config.failure_policy = failure_policy;
    config.trace = trace;
    let mut grid = GridSystem::new(topology, &opts.catalog, &config);
    let mut sim = Simulation::new();
    grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }
    grid
}

#[test]
fn discovery_moves_load_from_leaf_to_capacity() {
    let topology = lopsided();
    let grid = run_grid(
        &topology,
        &leaf_workload(30),
        true,
        FailurePolicy::BestEffort,
        false,
    );
    let executed_on_leaf = grid.scheduler("leaf").unwrap().completed().len();
    let executed_elsewhere: usize = ["head", "mid"]
        .iter()
        .map(|n| grid.scheduler(n).unwrap().completed().len())
        .sum();
    assert_eq!(executed_on_leaf + executed_elsewhere, 30);
    assert!(
        executed_elsewhere > executed_on_leaf,
        "most load must leave the weak leaf: {executed_elsewhere} vs {executed_on_leaf}"
    );
    assert!(grid.migrations() > 0);
}

#[test]
fn without_agents_the_leaf_keeps_everything() {
    let topology = lopsided();
    let grid = run_grid(
        &topology,
        &leaf_workload(30),
        false,
        FailurePolicy::BestEffort,
        false,
    );
    assert_eq!(grid.scheduler("leaf").unwrap().completed().len(), 30);
    assert_eq!(grid.migrations(), 0);
}

#[test]
fn trace_records_the_discovery_walk() {
    let topology = lopsided();
    let grid = run_grid(
        &topology,
        &leaf_workload(20),
        true,
        FailurePolicy::BestEffort,
        true,
    );
    let trace = grid.trace();
    assert!(trace.count(TraceKind::RequestArrival) == 20);
    assert!(
        trace.count(TraceKind::Discovery) > 0,
        "no discovery records"
    );
    assert!(trace.count(TraceKind::TaskComplete) == 20);
    assert!(trace.count(TraceKind::Advertisement) > 0);
    // Discovery records must reference real agents.
    for e in trace.of_kind(TraceKind::Discovery) {
        assert!(topology.names().contains(&e.who), "unknown agent {}", e.who);
    }
}

#[test]
fn reject_policy_drops_unsatisfiable_requests() {
    // A single slow resource and impossible deadlines: under the paper's
    // strict policy, discovery terminates unsuccessfully.
    let topology = GridTopology {
        resources: vec![ResourceSpec {
            name: "only".into(),
            platform: Platform::sun_sparcstation2(),
            nproc: 2,
            parent: None,
        }],
    };
    let workload = WorkloadConfig {
        requests: 40,
        interarrival: SimDuration::from_secs(1),
        seed: 23,
        agents: vec!["only".into()],
        environment: ExecEnv::Test,
    };
    let grid = run_grid(&topology, &workload, true, FailurePolicy::Reject, false);
    let completed = grid.scheduler("only").unwrap().completed().len();
    assert_eq!(completed + grid.rejected(), 40);
    assert!(
        grid.rejected() > 0,
        "a 2-node SPARCstation cannot absorb 40 tasks within their deadlines"
    );
}

#[test]
fn service_info_round_trips_the_wire_format() {
    let topology = lopsided();
    let grid = run_grid(
        &topology,
        &leaf_workload(5),
        true,
        FailurePolicy::BestEffort,
        false,
    );
    for name in topology.names() {
        let info = grid.service_info(&name, SimTime::from_secs(100));
        let xml = info.to_xml().render();
        let back = ServiceInfo::parse_str(&xml).expect("valid Fig. 5 XML");
        assert_eq!(back, info);
        assert_eq!(back.nproc, topology.get(&name).unwrap().nproc);
    }
}

#[test]
fn event_push_advertisement_also_balances() {
    use agentgrid_agents::AdvertisementStrategy;
    let topology = lopsided();
    let workload = leaf_workload(30);
    let opts = RunOptions::fast();
    let mut config = GridConfig::new(LocalPolicy::Ga, true, workload.seed);
    config.ga = opts.ga;
    config.advertisement = AdvertisementStrategy::EventPush {
        threshold: SimDuration::from_secs(5),
    };
    let mut grid = GridSystem::new(&topology, &opts.catalog, &config);
    let mut sim = Simulation::new();
    grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }
    let completed: usize = grid.schedulers().map(|s| s.completed().len()).sum();
    assert_eq!(completed, 30);
    assert!(grid.migrations() > 0, "push mode must still redistribute");
    assert!(grid.pull_messages() > 0, "pushes are counted as messages");
    // ACTs were populated by pushes, not pulls.
    for name in topology.names() {
        let agent = grid.hierarchy().get(&name).unwrap();
        for n in agent.neighbours() {
            assert!(
                agent.act().get(agent.id_of(n)).is_some(),
                "{name} never heard from {n}"
            );
        }
    }
}

#[test]
fn gossip_spreads_service_info_beyond_neighbours() {
    // A 3-level chain: head <- mid <- leaf. Without gossip the leaf only
    // ever knows `mid`; with gossip it learns about `head` after two
    // pull rounds.
    let topology = lopsided(); // head <- mid <- leaf
    let workload = leaf_workload(25);
    let opts = RunOptions::fast();

    let run = |gossip: bool| {
        let mut config = GridConfig::new(LocalPolicy::Ga, true, workload.seed);
        config.ga = opts.ga;
        config.gossip = gossip;
        let mut grid = GridSystem::new(&topology, &opts.catalog, &config);
        let mut sim = Simulation::new();
        grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
        while let Some(ev) = sim.step() {
            grid.handle(&mut sim, ev);
        }
        grid
    };

    let plain = run(false);
    let leaf = plain.hierarchy().get("leaf").unwrap();
    assert!(leaf.act().get(leaf.id_of("mid")).is_some());
    assert!(
        leaf.act().get(leaf.id_of("head")).is_none(),
        "without gossip the leaf must not know the head"
    );

    let gossiped = run(true);
    let leaf = gossiped.hierarchy().get("leaf").unwrap();
    assert!(
        leaf.act().get(leaf.id_of("head")).is_some(),
        "gossip must propagate the head's service info to the leaf"
    );
    // Both modes place every task; gossip can only shorten discovery.
    let completed: usize = gossiped.schedulers().map(|s| s.completed().len()).sum();
    assert_eq!(completed, 25);
    assert!(gossiped.discovery_hops() <= plain.discovery_hops());
}

#[test]
fn acts_carry_advertised_freetime() {
    let topology = lopsided();
    let grid = run_grid(
        &topology,
        &leaf_workload(10),
        true,
        FailurePolicy::BestEffort,
        false,
    );
    // After the run every agent has heard from each neighbour.
    for name in topology.names() {
        let agent = grid.hierarchy().get(&name).unwrap();
        for n in agent.neighbours() {
            assert!(
                agent.act().get(agent.id_of(n)).is_some(),
                "{name} never heard from {n}"
            );
        }
    }
}
