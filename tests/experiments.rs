//! Integration: the three case-study experiments on a reduced workload.
//!
//! These assert the paper's qualitative results (the *shape* of Table 3):
//! GA improves on FIFO locally, and the agent layer improves the grid
//! globally.

use agentgrid::prelude::*;

fn reduced_case_study() -> (GridTopology, WorkloadConfig) {
    let topology = GridTopology::case_study();
    let mut workload = WorkloadConfig::case_study(topology.names(), 2003);
    workload.requests = 240;
    (topology, workload)
}

#[test]
fn all_three_experiments_complete_every_task() {
    let (topology, workload) = reduced_case_study();
    let results = run_table3(&topology, &workload, &RunOptions::fast());
    assert_eq!(results.experiments.len(), 3);
    for e in &results.experiments {
        assert_eq!(e.total.tasks, 240, "exp {} lost tasks", e.design.number);
        assert_eq!(e.rejected, 0, "exp {} rejected tasks", e.design.number);
        assert_eq!(e.per_resource.len(), 12);
    }
}

#[test]
fn agents_improve_grid_balance_and_utilisation() {
    let (topology, workload) = reduced_case_study();
    let results = run_table3(&topology, &workload, &RunOptions::fast());
    let exp1 = &results.experiments[0];
    let exp2 = &results.experiments[1];
    let exp3 = &results.experiments[2];

    // The paper's headline: experiment 3 dominates on every total metric.
    assert!(
        exp3.total.balance_pct > exp2.total.balance_pct,
        "agents must improve grid balance: {} vs {}",
        exp3.total.balance_pct,
        exp2.total.balance_pct
    );
    assert!(
        exp3.total.utilisation_pct > exp1.total.utilisation_pct,
        "agents must improve utilisation: {} vs {}",
        exp3.total.utilisation_pct,
        exp1.total.utilisation_pct
    );
    assert!(
        exp3.total.advance_s > exp1.total.advance_s,
        "agents must improve completion advance: {} vs {}",
        exp3.total.advance_s,
        exp1.total.advance_s
    );
    // And the grid drains faster.
    assert!(exp3.horizon_s < exp1.horizon_s);
}

#[test]
fn migration_happens_only_with_agents() {
    let (topology, workload) = reduced_case_study();
    let results = run_table3(&topology, &workload, &RunOptions::fast());
    assert_eq!(results.experiments[0].migrations, 0);
    assert_eq!(results.experiments[1].migrations, 0);
    assert!(
        results.experiments[2].migrations > 0,
        "experiment 3 must redistribute load"
    );
    assert_eq!(results.experiments[0].pull_messages, 0);
    assert!(results.experiments[2].pull_messages > 0);
}

#[test]
fn metrics_are_within_domain_bounds() {
    let (topology, workload) = reduced_case_study();
    let results = run_table3(&topology, &workload, &RunOptions::fast());
    for e in &results.experiments {
        for row in e.per_resource.iter() {
            let m = &row.metrics;
            assert!(
                (0.0..=100.0).contains(&m.utilisation_pct),
                "{} utilisation {}",
                row.name,
                m.utilisation_pct
            );
            assert!(
                (0.0..=100.0).contains(&m.balance_pct),
                "{} balance {}",
                row.name,
                m.balance_pct
            );
        }
        assert!((0.0..=100.0).contains(&e.total.utilisation_pct));
        assert!((0.0..=100.0).contains(&e.total.balance_pct));
        assert!((0.0..=1.0).contains(&e.cache_hit_ratio));
    }
}

#[test]
fn table3_rendering_includes_every_agent() {
    let (topology, workload) = reduced_case_study();
    let results = run_table3(&topology, &workload, &RunOptions::fast());
    let table = results.table3();
    for name in topology.names() {
        assert!(table.contains(&name), "missing {name} in table");
    }
    assert!(table.contains("Total"));
}

#[test]
fn figure_series_are_consistent_with_table() {
    use agentgrid::result::FigureMetric;
    let (topology, workload) = reduced_case_study();
    let results = run_table3(&topology, &workload, &RunOptions::fast());
    for metric in [
        FigureMetric::AdvanceTime,
        FigureMetric::Utilisation,
        FigureMetric::Balance,
    ] {
        let series = results.figure_series(metric);
        assert_eq!(series.len(), 13, "12 agents + total");
        for (_, values) in &series {
            assert_eq!(values.len(), 3, "one point per experiment");
        }
    }
}

#[test]
fn completed_executions_honour_pace_predictions() {
    // In test mode the executed duration must equal the PACE prediction
    // for the node count actually allocated.
    let topology = GridTopology::flat(2, 8);
    let workload = WorkloadConfig {
        requests: 20,
        interarrival: SimDuration::from_secs(1),
        seed: 5,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    // Rebuild the run manually to keep the grid around for inspection.
    let opts = RunOptions::fast();
    let design = ExperimentDesign::experiment2();
    let mut config = GridConfig::new(design.local_policy, design.agents_enabled, workload.seed);
    config.ga = opts.ga;
    let mut grid = GridSystem::new(&topology, &opts.catalog, &config);
    let mut sim = Simulation::new();
    grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }
    let engine = CachedEngine::new();
    for s in grid.schedulers() {
        for c in s.completed() {
            let predicted = engine.evaluate(&c.task.app, s.resource().model(), c.mask.count());
            let actual = c.completion.saturating_since(c.start).as_secs_f64();
            assert!(
                (predicted - actual).abs() < 1e-5,
                "task {} ran {actual}s, predicted {predicted}s",
                c.task.id
            );
        }
    }
}

#[test]
fn bursty_arrivals_are_absorbed() {
    // A Poisson stream and a heavy burst stream, same mean rate: the
    // grid must place everything in both cases.
    let topology = GridTopology::flat(3, 8);
    let workload = WorkloadConfig {
        requests: 40,
        interarrival: SimDuration::from_secs(1),
        seed: 31,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let opts = RunOptions::fast();
    for pattern in [
        ArrivalPattern::Poisson,
        ArrivalPattern::Bursts { burst_size: 10 },
    ] {
        let mut config = GridConfig::new(LocalPolicy::Ga, true, workload.seed);
        config.ga = opts.ga;
        let mut grid = GridSystem::new(&topology, &opts.catalog, &config);
        let mut sim = Simulation::new();
        grid.bootstrap(
            &mut sim,
            workload.generate_with_pattern(&opts.catalog, pattern),
        );
        while let Some(ev) = sim.step() {
            grid.handle(&mut sim, ev);
        }
        let completed: usize = grid.schedulers().map(|s| s.completed().len()).sum();
        assert_eq!(completed, 40, "pattern {pattern:?} lost tasks");
        assert!(!grid.work_remains());
    }
}

#[test]
fn noisy_predictions_still_complete_and_agents_still_win() {
    let topology = GridTopology::flat(3, 8);
    let workload = WorkloadConfig {
        requests: 40,
        interarrival: SimDuration::from_secs(1),
        seed: 37,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let mut opts = RunOptions::fast();
    opts.noise = NoiseModel::LogNormal { sigma: 0.3 };
    let exp2 = run_experiment(
        &ExperimentDesign::experiment2(),
        &topology,
        &workload,
        &opts,
    );
    let exp3 = run_experiment(
        &ExperimentDesign::experiment3(),
        &topology,
        &workload,
        &opts,
    );
    assert_eq!(exp2.total.tasks, 40);
    assert_eq!(exp3.total.tasks, 40);
    assert!(
        exp3.total.advance_s >= exp2.total.advance_s,
        "agents must still help under noise: {} vs {}",
        exp3.total.advance_s,
        exp2.total.advance_s
    );
}
