//! Integration: node failures observed through grid-level monitor polls.

use agentgrid::prelude::*;
use agentgrid_cluster::monitor::AvailabilityChange;
use agentgrid_sim::SimDuration as D;

#[test]
fn grid_absorbs_a_mid_run_outage() {
    let topology = GridTopology::flat(2, 8);
    let workload = WorkloadConfig {
        requests: 40,
        interarrival: D::from_secs(2),
        seed: 51,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let opts = RunOptions::fast();
    let mut config = GridConfig::new(LocalPolicy::Ga, true, workload.seed);
    config.ga = opts.ga;
    let mut grid = GridSystem::new(&topology, &opts.catalog, &config);
    grid.enable_monitor_polls();

    // Half of R1's nodes die at t = 15 s and recover at t = 50 s; the
    // monitor polls every 10 s.
    {
        let s = grid.scheduler_mut("R1").expect("R1 exists");
        s.monitor_mut().set_period(D::from_secs(10));
        for node in 4..8 {
            s.monitor_mut().inject(AvailabilityChange {
                at: SimTime::from_secs(15),
                node,
                up: false,
            });
        }
        for node in 4..8 {
            s.monitor_mut().inject(AvailabilityChange {
                at: SimTime::from_secs(50),
                node,
                up: true,
            });
        }
    }

    let mut sim = Simulation::new();
    grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }

    // Every task still completes despite the outage.
    let completed: usize = grid.schedulers().map(|s| s.completed().len()).sum();
    assert_eq!(completed, 40);
    assert!(!grid.work_remains());

    // No task that *started* strictly inside the observed outage window
    // used a dead node. (Tasks committed before — or by events processed
    // at the same instant as — the observing poll legitimately keep
    // their nodes: the staleness the paper's monitor design accepts.)
    let r1 = &grid.scheduler("R1").unwrap();
    for c in r1.completed() {
        if c.start > SimTime::from_secs(20) && c.start < SimTime::from_secs(50) {
            for node in c.mask.iter() {
                assert!(
                    node < 4,
                    "task {} started on dead node {node} at {}",
                    c.task.id,
                    c.start
                );
            }
        }
    }

    // R2 remained fully available and did some of the work.
    assert!(!grid.scheduler("R2").unwrap().completed().is_empty());
}

#[test]
fn full_outage_holds_tasks_until_recovery() {
    let topology = GridTopology::flat(1, 2);
    let opts = RunOptions::fast();
    let mut config = GridConfig::new(LocalPolicy::Ga, false, 5);
    config.ga = opts.ga;
    let mut grid = GridSystem::new(&topology, &opts.catalog, &config);
    grid.enable_monitor_polls();
    {
        let s = grid.scheduler_mut("R1").expect("R1 exists");
        s.monitor_mut().set_period(D::from_secs(5));
        for node in 0..2 {
            s.monitor_mut().inject(AvailabilityChange {
                at: SimTime::from_secs(1),
                node,
                up: false,
            });
        }
        for node in 0..2 {
            s.monitor_mut().inject(AvailabilityChange {
                at: SimTime::from_secs(30),
                node,
                up: true,
            });
        }
    }
    let workload = WorkloadConfig {
        requests: 5,
        interarrival: D::from_secs(2),
        seed: 5,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let mut sim = Simulation::new();
    // Requests start at t=2, after the outage begins but before the
    // first poll observes it; later arrivals hit the observed outage.
    grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }
    let completed = grid.scheduler("R1").unwrap().completed().len();
    assert_eq!(completed, 5, "held tasks must run after recovery");
    // At least one task can only have started after the recovery poll.
    let late_start = grid
        .scheduler("R1")
        .unwrap()
        .completed()
        .iter()
        .filter(|c| c.start >= SimTime::from_secs(30))
        .count();
    assert!(late_start > 0, "some tasks must have waited out the outage");
}
