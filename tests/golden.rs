//! Golden determinism test for the §9 grid-layer rework.
//!
//! `tests/golden_table3.json` was captured from `run_table3` **before**
//! interned ids, incremental bookkeeping and the timing-wheel event queue
//! landed (see `examples/golden_table3.rs` for the exact invocation). The
//! rework claims bit-identical behaviour, so the current code must
//! reproduce that file byte for byte — any divergence in event order,
//! tie-breaking or metric accounting shows up here first.
//!
//! Regenerate the fixture (`cargo run --example golden_table3`) only when
//! a change is *meant* to alter results, and say so in the commit.

use agentgrid::prelude::*;
use agentgrid_sim::SimDuration;

const GOLDEN: &str = include_str!("golden_table3.json");

fn scenario() -> (GridTopology, WorkloadConfig) {
    let topology = GridTopology::flat(3, 4);
    let workload = WorkloadConfig {
        requests: 25,
        interarrival: SimDuration::from_secs(1),
        seed: 77,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    (topology, workload)
}

#[test]
fn table3_output_is_bit_identical_to_the_pre_rework_fixture() {
    let (topology, workload) = scenario();
    let results = run_table3(&topology, &workload, &RunOptions::fast());
    assert_eq!(
        results.to_json(),
        GOLDEN.trim_end(),
        "run_table3 output diverged from the pre-rework golden fixture"
    );
}

#[test]
fn parallel_table3_matches_the_fixture_too() {
    let (topology, workload) = scenario();
    let results = run_table3_parallel(&topology, &workload, &RunOptions::fast());
    assert_eq!(results.to_json(), GOLDEN.trim_end());
}

/// The §10 chaos layer guard: an explicitly empty [`FaultPlan`] must be
/// a strict no-op — same bytes as the pre-chaos (and pre-rework) fixture.
#[test]
fn empty_fault_plan_is_a_strict_noop() {
    let (topology, workload) = scenario();
    let mut opts = RunOptions::fast();
    opts.chaos = FaultPlan::none();
    let results = run_table3(&topology, &workload, &opts);
    assert_eq!(
        results.to_json(),
        GOLDEN.trim_end(),
        "a disabled chaos layer altered the golden output"
    );
}
