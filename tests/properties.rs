//! Property-based integration tests: whole-grid invariants under random
//! workloads, topologies and seeds.

use agentgrid::prelude::*;
use proptest::prelude::*;

/// Run one experiment and return the grid for inspection.
fn run_grid(
    topology: &GridTopology,
    workload: &WorkloadConfig,
    agents_enabled: bool,
) -> GridSystem {
    let mut opts = RunOptions::fast();
    opts.ga.population = 8;
    opts.ga.generations_per_event = 4;
    opts.ga.stall_generations = 2;
    let mut config = GridConfig::new(LocalPolicy::Ga, agents_enabled, workload.seed);
    config.ga = opts.ga;
    let mut grid = GridSystem::new(topology, &opts.catalog, &config);
    let mut sim = Simulation::new();
    grid.bootstrap(&mut sim, workload.generate(&opts.catalog));
    while let Some(ev) = sim.step() {
        grid.handle(&mut sim, ev);
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Every submitted task completes exactly once, on exactly one
    /// resource, with no node ever double-booked.
    #[test]
    fn no_task_lost_no_node_double_booked(
        seed in 0u64..1000,
        requests in 1usize..25,
        resources in 1usize..4,
        nproc in 1usize..8,
        agents_enabled in proptest::bool::ANY,
    ) {
        let topology = GridTopology::flat(resources, nproc);
        let workload = WorkloadConfig {
            requests,
            interarrival: SimDuration::from_secs(1),
            seed,
            agents: topology.names(),
            environment: ExecEnv::Test,
        };
        let grid = run_grid(&topology, &workload, agents_enabled);

        // Completion count conservation.
        let completed: usize = grid.schedulers().map(|s| s.completed().len()).sum();
        prop_assert_eq!(completed + grid.rejected(), requests);
        prop_assert_eq!(grid.rejected(), 0, "best-effort placement never rejects");

        // Unique task ids across the grid.
        let mut ids: Vec<u64> = grid
            .schedulers()
            .flat_map(|s| s.completed().iter().map(|c| c.task.id.0))
            .collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "a task completed twice");

        // No double-booking: per-node intervals from the allocation logs
        // must be disjoint.
        for s in grid.schedulers() {
            let n = s.resource().nproc();
            let mut per_node: Vec<Vec<(SimTime, SimTime)>> = vec![vec![]; n];
            for a in s.resource().allocations() {
                for i in a.mask.iter() {
                    per_node[i].push((a.start, a.end));
                }
            }
            for intervals in &mut per_node {
                intervals.sort();
                for w in intervals.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0, "overlap {:?} then {:?}", w[0], w[1]);
                }
            }
        }
    }

    /// Metrics stay in their mathematical domains for arbitrary runs.
    #[test]
    fn metrics_domains_hold(
        seed in 0u64..1000,
        requests in 1usize..20,
        agents_enabled in proptest::bool::ANY,
    ) {
        let topology = GridTopology::flat(2, 4);
        let workload = WorkloadConfig {
            requests,
            interarrival: SimDuration::from_secs(2),
            seed,
            agents: topology.names(),
            environment: ExecEnv::Test,
        };
        let design = if agents_enabled {
            ExperimentDesign::experiment3()
        } else {
            ExperimentDesign::experiment2()
        };
        let mut opts = RunOptions::fast();
        opts.ga.population = 8;
        opts.ga.generations_per_event = 4;
        let r = run_experiment(&design, &topology, &workload, &opts);
        prop_assert!((0.0..=100.0).contains(&r.total.utilisation_pct));
        prop_assert!((0.0..=100.0).contains(&r.total.balance_pct));
        prop_assert!(r.horizon_s >= 0.0);
        prop_assert!(r.total.advance_s.is_finite());
        for row in &r.per_resource {
            prop_assert!((0.0..=100.0).contains(&row.metrics.utilisation_pct));
            prop_assert!((0.0..=100.0).contains(&row.metrics.balance_pct));
        }
    }

    /// Shard-count invariance (DESIGN.md §13): results and the telemetry
    /// stream are pure functions of the workload — never of the shard or
    /// worker count — across random tree topologies, workloads and fault
    /// plans. Chaos runs take the sequential path by construction; the
    /// property pins that the eligibility gate keeps them identical too.
    #[test]
    fn shard_count_never_changes_outcomes(
        seed in 0u64..500,
        requests in 1usize..14,
        levels in 1u32..4,
        branching in 1usize..4,
        nproc in 1usize..5,
        crashes in 0usize..3,
    ) {
        let topology = GridTopology::tree(levels, branching, nproc);
        let workload = WorkloadConfig {
            requests,
            interarrival: SimDuration::from_secs(1),
            seed,
            agents: topology.names(),
            environment: ExecEnv::Test,
        };
        let design = ExperimentDesign::experiment3();
        let chaos = if crashes > 0 {
            FaultPlan::random(
                seed,
                &topology.names(),
                SimTime::from_secs(60),
                crashes,
                SimDuration::from_secs(10),
            )
            .with_act_ttl(SimDuration::from_secs(30))
            .with_dispatch_timeout(SimDuration::from_secs(2))
            .with_max_retries(24)
        } else {
            FaultPlan::none()
        };
        let run = |shards: usize| {
            let ring = std::sync::Arc::new(RingRecorder::unbounded());
            let mut opts = RunOptions::fast();
            opts.ga.population = 8;
            opts.ga.generations_per_event = 4;
            opts.ga.stall_generations = 2;
            opts.chaos = chaos.clone();
            opts.step_limit = Some(2_000_000);
            opts.shards = shards;
            opts.shard_workers = Some(2);
            opts.telemetry = Telemetry::new(ring.clone());
            let result = run_experiment(&design, &topology, &workload, &opts);
            // Zero host wall-clock fields: the one thing a replay can
            // never reproduce.
            let events: Vec<TimedEvent> = ring
                .snapshot()
                .into_iter()
                .map(|mut te| {
                    match &mut te.event {
                        Event::GaEvolve { wall_us, .. } => *wall_us = 0,
                        Event::GaHotPath { evals_per_sec, .. } => *evals_per_sec = 0.0,
                        _ => {}
                    }
                    te
                })
                .collect();
            (result.to_json(), events)
        };
        let (reference, reference_events) = run(1);
        for shards in [2usize, 4, 8] {
            let (json, events) = run(shards);
            prop_assert_eq!(&reference, &json, "shards={}", shards);
            prop_assert_eq!(&reference_events, &events, "shards={}", shards);
        }
    }

    /// Tasks never start before their arrival and always run for exactly
    /// their predicted duration (test mode).
    #[test]
    fn causality_and_prediction_fidelity(
        seed in 0u64..1000,
        requests in 1usize..15,
    ) {
        let topology = GridTopology::flat(2, 4);
        let workload = WorkloadConfig {
            requests,
            interarrival: SimDuration::from_secs(1),
            seed,
            agents: topology.names(),
            environment: ExecEnv::Test,
        };
        let grid = run_grid(&topology, &workload, true);
        let engine = CachedEngine::new();
        for s in grid.schedulers() {
            for c in s.completed() {
                prop_assert!(c.start >= c.task.arrival, "task started before arrival");
                let predicted = engine.evaluate(&c.task.app, s.resource().model(), c.mask.count());
                let actual = c.completion.saturating_since(c.start).as_secs_f64();
                prop_assert!((predicted - actual).abs() < 1e-5);
                prop_assert!(!c.mask.is_empty());
                prop_assert!(c.mask.count() <= s.resource().nproc());
            }
        }
    }
}
