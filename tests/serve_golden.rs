//! Serve-mode determinism and batch-equivalence guarantees.
//!
//! The contract `agentgrid serve --fast-forward` makes: a pure request
//! stream is *bit-identical* to the batch `run` command on the same
//! workload, any fixed stream (scales included) reproduces itself
//! byte-for-byte, a scale cycle completes every task exactly once under
//! the online invariant checker, and the tuner's knob changes are
//! visible in the telemetry record.

use agentgrid::prelude::*;
use agentgrid_serve::{
    parse_stream, write_stream, GridService, PacedOptions, ServeConfig, ServeLine, TunerConfig,
};

fn small() -> (GridTopology, WorkloadConfig) {
    let topology = GridTopology::flat(3, 4);
    let workload = WorkloadConfig {
        requests: 25,
        interarrival: SimDuration::from_secs(1),
        seed: 77,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    (topology, workload)
}

fn serve_cfg(topology: &GridTopology, seed: u64, verify: bool) -> ServeConfig {
    ServeConfig {
        topology: topology.clone(),
        design: ExperimentDesign::experiment3(),
        opts: RunOptions::fast(),
        seed,
        verify,
        tune: None,
        wal: None,
        record: None,
    }
}

/// The request lines of `small()`'s workload, round-tripped through the
/// JSONL wire format so the test also covers the writer/parser bridge.
fn request_lines(workload: &WorkloadConfig) -> Vec<ServeLine> {
    let requests = workload.generate(&RunOptions::fast().catalog);
    let lines: Vec<ServeLine> = requests.into_iter().map(ServeLine::Request).collect();
    let text = write_stream(&lines);
    let reparsed = parse_stream(&text, SimTime::ZERO).expect("written stream re-parses");
    assert_eq!(reparsed, lines, "wire format must round-trip exactly");
    reparsed
}

/// A closed scale cycle: R2 leaves mid-stream and rejoins before the
/// workload ends, with a recovery envelope wide enough to re-place
/// everything (mirrors tests/chaos.rs).
fn scale_cycle_lines(workload: &WorkloadConfig) -> Vec<ServeLine> {
    let mut lines = request_lines(workload);
    lines.push(ServeLine::Scale {
        at: SimTime::from_secs(5),
        resource: "R2".to_string(),
        up: false,
    });
    lines.push(ServeLine::Scale {
        at: SimTime::from_secs(12),
        resource: "R2".to_string(),
        up: true,
    });
    lines
}

/// Drop the one metric family measured against the *host* wall clock
/// (`ga_generation_wall_us`) — everything else in the exposition is a
/// pure function of the seed and must reproduce byte-for-byte.
fn sim_deterministic_metrics(text: &str) -> String {
    text.lines()
        .filter(|l| !l.contains("ga_generation_wall_us"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn recovery_envelope(cfg: &mut ServeConfig) {
    cfg.opts.chaos = FaultPlan::none()
        .with_act_ttl(SimDuration::from_secs(30))
        .with_dispatch_timeout(SimDuration::from_secs(2))
        .with_max_retries(24);
}

#[test]
fn fast_forward_on_a_pure_stream_is_bit_identical_to_batch_run() {
    let (topology, workload) = small();
    let design = ExperimentDesign::experiment3();
    let batch = run_experiment(&design, &topology, &workload, &RunOptions::fast());

    let lines = request_lines(&workload);
    let report = GridService::fast_forward(&serve_cfg(&topology, workload.seed, false), &lines)
        .expect("fast-forward serves");

    assert_eq!(report.injected, workload.requests);
    assert_eq!(report.result, batch);
    // Strong form: serialised bytes match — serve IS the batch driver.
    assert_eq!(report.result.to_json(), batch.to_json());
}

#[test]
fn fast_forward_with_scales_reproduces_itself_byte_for_byte() {
    let (topology, workload) = small();
    let lines = scale_cycle_lines(&workload);
    let mut cfg = serve_cfg(&topology, workload.seed, false);
    recovery_envelope(&mut cfg);

    let a = GridService::fast_forward(&cfg, &lines).expect("first run");
    let b = GridService::fast_forward(&cfg, &lines).expect("second run");
    assert_eq!(a.result.to_json(), b.result.to_json());
    assert_eq!(
        sim_deterministic_metrics(&a.metrics_text),
        sim_deterministic_metrics(&b.metrics_text)
    );
    assert_eq!(a.scale_directives, 2);
}

#[test]
fn scale_cycle_completes_exactly_once_under_verify() {
    let (topology, workload) = small();
    let lines = scale_cycle_lines(&workload);
    let mut cfg = serve_cfg(&topology, workload.seed, true);
    recovery_envelope(&mut cfg);

    let report = GridService::fast_forward(&cfg, &lines).expect("serves under verify");
    assert!(
        report.clean,
        "invariant violations:\n{}",
        report.verify_report.as_deref().unwrap_or("")
    );
    assert!(
        report.verify_events > 0,
        "the checker must actually observe"
    );
    assert_eq!(
        report.completed + report.result.rejected,
        report.injected,
        "every injected task completes exactly once or is rejected"
    );
}

#[test]
fn scripted_injection_matches_fast_forward_totals() {
    // The live-injection path arms the recovery machinery from boot (a
    // directive could arrive at any time), so event interleavings may
    // differ — but on a pure request stream the *outcome* must agree.
    let (topology, workload) = small();
    let lines = request_lines(&workload);
    let cfg = serve_cfg(&topology, workload.seed, true);

    let ff = GridService::fast_forward(&cfg, &lines).expect("fast-forward");
    let scripted = GridService::run_scripted(&cfg, &lines).expect("scripted");
    assert!(scripted.clean);
    assert_eq!(scripted.injected, ff.injected);
    assert_eq!(scripted.completed, ff.completed);
    assert_eq!(scripted.result.rejected, ff.result.rejected);
}

#[test]
fn scripted_injection_is_deterministic() {
    let (topology, workload) = small();
    let lines = scale_cycle_lines(&workload);
    let mut cfg = serve_cfg(&topology, workload.seed, true);
    recovery_envelope(&mut cfg);

    let a = GridService::run_scripted(&cfg, &lines).expect("first run");
    let b = GridService::run_scripted(&cfg, &lines).expect("second run");
    assert_eq!(a.result.to_json(), b.result.to_json());
    assert_eq!(
        sim_deterministic_metrics(&a.metrics_text),
        sim_deterministic_metrics(&b.metrics_text)
    );
    assert!(a.clean && b.clean);
}

#[test]
fn the_tuner_visibly_changes_the_knobs() {
    // A burst far above the high-backlog threshold: 60 requests landing
    // once a second on two single-node resources. The tuner must
    // escalate (and record every adjustment in telemetry).
    let topology = GridTopology::flat(2, 1);
    let workload = WorkloadConfig {
        requests: 60,
        interarrival: SimDuration::from_secs(1),
        seed: 9,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let mut cfg = serve_cfg(&topology, workload.seed, false);
    cfg.tune = Some(TunerConfig {
        interval: SimDuration::from_secs(5),
        ..TunerConfig::default()
    });

    let lines = request_lines(&workload);
    let report = GridService::fast_forward(&cfg, &lines).expect("tuned serve");
    assert!(
        report.tuner_adjustments > 0,
        "the tuner never adjusted a knob under sustained backlog"
    );
    assert!(
        report
            .metrics_text
            .contains("agentgrid_events_total{kind=\"tuner_adjust\"}"),
        "tuner adjustments must appear on the telemetry record:\n{}",
        report.metrics_text
    );
}

#[test]
fn paced_mode_drains_a_piped_stream() {
    // Real-time smoke at heavy time dilation: a short stream arrives via
    // the reader thread and the service drains to the same exactly-once
    // accounting. Wall-clock arrival stamps make the run non-reproducible
    // by design, so only totals are asserted.
    let (topology, workload) = small();
    let mut short = workload;
    short.requests = 4;
    let text = write_stream(&request_lines(&short));

    let report = GridService::run_paced(
        &serve_cfg(&topology, short.seed, true),
        std::io::Cursor::new(text),
        PacedOptions {
            speed: 1000.0,
            status_every: std::time::Duration::ZERO,
            admission: None,
        },
        None,
    )
    .expect("paced serve drains");
    assert!(report.clean);
    assert_eq!(report.injected, 4);
    assert_eq!(report.completed + report.result.rejected, 4);
    assert!(report.metrics_text.contains("agentgrid_events_total"));
}
