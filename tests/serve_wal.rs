//! Durability guarantees of the served grid (DESIGN.md §14): torn-tail
//! recovery at every byte boundary, record/replay determinism, and
//! crash recovery under a chaos fault schedule.

use agentgrid::prelude::*;
use agentgrid_serve::{
    read_recording, read_wal, GridService, ServeConfig, ServeLine, SyncPolicy, WalConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn small() -> (GridTopology, WorkloadConfig) {
    let topology = GridTopology::flat(3, 4);
    let workload = WorkloadConfig {
        requests: 6,
        interarrival: SimDuration::from_secs(1),
        seed: 77,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    (topology, workload)
}

fn serve_cfg(topology: &GridTopology, seed: u64, wal: Option<WalConfig>) -> ServeConfig {
    ServeConfig {
        topology: topology.clone(),
        design: ExperimentDesign::experiment3(),
        opts: RunOptions::fast(),
        seed,
        verify: true,
        tune: None,
        wal,
        record: None,
    }
}

fn request_lines(workload: &WorkloadConfig) -> Vec<ServeLine> {
    workload
        .generate(&RunOptions::fast().catalog)
        .into_iter()
        .map(ServeLine::Request)
        .collect()
}

/// Drop the one wall-clock metric family (tests/serve_golden.rs draws
/// the same line); the rest must reproduce byte-for-byte.
fn sim_deterministic_metrics(text: &str) -> String {
    text.lines()
        .filter(|l| !l.contains("ga_generation_wall_us"))
        .map(|l| format!("{l}\n"))
        .collect()
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named temp file, deleted on drop.
struct TempFile {
    path: PathBuf,
}

impl TempFile {
    fn new(tag: &str) -> TempFile {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "agentgrid-serve-wal-{}-{n}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        TempFile { path }
    }

    fn as_str(&self) -> String {
        self.path.to_string_lossy().into_owned()
    }

    fn wal(&self) -> WalConfig {
        WalConfig {
            path: self.as_str(),
            sync: SyncPolicy::Off,
        }
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The torn-tail matrix: write a full log, truncate it at *every* byte
/// boundary of the final record, and require each recovery to (a) stop
/// at the last complete record without panicking and (b) finish the
/// stream bit-identical to an uninterrupted run.
#[test]
fn torn_tail_recovers_cleanly_at_every_byte_boundary() {
    let (topology, workload) = small();
    let mut lines = request_lines(&workload);
    lines.sort_by_key(ServeLine::at);
    let total = lines.len() as u64;

    let wal_ref = TempFile::new("ref.wal");
    let reference = GridService::run_scripted(
        &serve_cfg(&topology, workload.seed, Some(wal_ref.wal())),
        &lines,
    )
    .expect("reference run");
    let ref_json = reference.result.to_json();
    let ref_metrics = sim_deterministic_metrics(&reference.metrics_text);
    let full = std::fs::read(&wal_ref.path).expect("reference log");
    assert_eq!(
        read_wal(&wal_ref.as_str()).expect("parses").last_seq(),
        total
    );

    // Start of the final record = byte after the penultimate newline.
    let last_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .expect("more than one record");

    for cut in last_start..=full.len() {
        let torn = TempFile::new(&format!("torn-{cut}.wal"));
        std::fs::write(&torn.path, &full[..cut]).expect("write torn copy");

        let recovery = read_wal(&torn.as_str()).expect("torn log parses");
        let expect_seq = if cut == full.len() { total } else { total - 1 };
        assert_eq!(
            recovery.last_seq(),
            expect_seq,
            "cut at byte {cut}: recovery must stop at the last complete record"
        );
        assert_eq!(
            recovery.truncated_bytes,
            (cut - last_start) as u64 * u64::from(cut != full.len())
        );

        let cfg = serve_cfg(&topology, workload.seed, Some(torn.wal()));
        let mut svc = GridService::open_live(&cfg, false).expect("recovery opens");
        let replayed = svc.wal_replayed() as usize;
        assert_eq!(replayed as u64, expect_seq, "cut at byte {cut}");
        svc.ingest(&lines[replayed..])
            .expect("re-accept the lost line");
        svc.drain().expect("drains");
        let recovered = svc.into_report();

        assert_eq!(
            recovered.result.to_json(),
            ref_json,
            "cut at byte {cut}: recovered result diverged"
        );
        assert_eq!(
            sim_deterministic_metrics(&recovered.metrics_text),
            ref_metrics,
            "cut at byte {cut}: recovered metrics diverged"
        );
        let wal = recovered.wal.expect("wal summary");
        assert_eq!(wal.final_seq, total, "cut at byte {cut}");
        assert!(recovered.clean, "cut at byte {cut}: invariants violated");
        // A resumed log with history moves to the next epoch, so any
        // record re-appended after the cut must carry epoch 1. (At the
        // full-length cut nothing is re-appended and epoch stays 0.)
        let reparsed = read_wal(&torn.as_str()).expect("resumed log parses");
        assert_eq!(reparsed.last_seq(), total);
        let expect_epoch = u64::from(cut != full.len());
        assert_eq!(
            reparsed.last_epoch(),
            expect_epoch,
            "cut at byte {cut}: resumed records must carry the new epoch"
        );
    }
}

/// `--record` of a scripted session replays deterministically and
/// bit-identical to the session it recorded; the raw WAL of the same
/// session replays to the same result too.
#[test]
fn recorded_sessions_replay_bit_identically() {
    let (topology, workload) = small();
    let mut lines = request_lines(&workload);
    lines.push(ServeLine::Scale {
        at: SimTime::from_secs(2),
        resource: "R3".to_string(),
        up: false,
    });
    lines.push(ServeLine::Scale {
        at: SimTime::from_secs(8),
        resource: "R3".to_string(),
        up: true,
    });
    lines.sort_by_key(ServeLine::at);

    let record = TempFile::new("session.rec");
    let wal = TempFile::new("session.wal");
    let mut cfg = serve_cfg(&topology, workload.seed, Some(wal.wal()));
    cfg.opts.chaos = FaultPlan::none()
        .with_act_ttl(SimDuration::from_secs(30))
        .with_dispatch_timeout(SimDuration::from_secs(2))
        .with_max_retries(24);
    cfg.record = Some(record.as_str());
    let original = GridService::run_scripted(&cfg, &lines).expect("recorded run");
    assert!(original.clean);

    // Replay the recording (acceptance order, no sorting, no WAL).
    let text = std::fs::read_to_string(&record.path).expect("recording");
    let (meta, recorded) = read_recording(&text).expect("recording parses");
    assert_eq!(meta, None, "the service itself writes no header");
    assert_eq!(recorded.len(), lines.len());
    cfg.wal = None;
    cfg.record = None;
    let a = GridService::run_replay(&cfg, &recorded).expect("first replay");
    let b = GridService::run_replay(&cfg, &recorded).expect("second replay");
    assert_eq!(a.result.to_json(), original.result.to_json());
    assert_eq!(b.result.to_json(), original.result.to_json());
    assert_eq!(
        sim_deterministic_metrics(&a.metrics_text),
        sim_deterministic_metrics(&b.metrics_text)
    );

    // The raw WAL is itself a replayable recording.
    let wal_text = std::fs::read_to_string(&wal.path).expect("wal text");
    let (_, from_wal) = read_recording(&wal_text).expect("wal parses as recording");
    assert_eq!(from_wal, recorded, "wal and recording hold the same lines");
    let c = GridService::run_replay(&cfg, &from_wal).expect("wal replay");
    assert_eq!(c.result.to_json(), original.result.to_json());
}

/// Chaos × durability: under a seeded crash/restart fault schedule, a
/// WAL-recovered session reproduces the identical fault outcome —
/// same agent_down/up counts, same exactly-once completion accounting —
/// because the schedule lives in the config and the accepted lines live
/// in the log.
#[test]
fn chaos_fault_schedule_survives_crash_recovery() {
    let (topology, workload) = small();
    let mut lines = request_lines(&workload);
    lines.sort_by_key(ServeLine::at);

    let chaos = FaultPlan::random(
        workload.seed,
        &topology.names(),
        SimTime::from_secs(8),
        1,
        SimDuration::from_secs(4),
    )
    .with_act_ttl(SimDuration::from_secs(30))
    .with_dispatch_timeout(SimDuration::from_secs(2))
    .with_max_retries(24);

    let wal_ref = TempFile::new("chaos-ref.wal");
    let mut cfg_ref = serve_cfg(&topology, workload.seed, Some(wal_ref.wal()));
    cfg_ref.opts.chaos = chaos.clone();
    let reference = GridService::run_scripted(&cfg_ref, &lines).expect("chaotic reference run");
    assert!(
        reference.clean,
        "{}",
        reference.verify_report.unwrap_or_default()
    );
    assert!(
        reference
            .metrics_text
            .contains("agentgrid_events_total{kind=\"agent_down\"}"),
        "the fault schedule must actually fire:\n{}",
        reference.metrics_text
    );

    // Crash after half the lines, recover, finish.
    let wal_crash = TempFile::new("chaos-crash.wal");
    let mut cfg = serve_cfg(&topology, workload.seed, Some(wal_crash.wal()));
    cfg.opts.chaos = chaos;
    let kill = lines.len() / 2;
    {
        let mut svc = GridService::open_live(&cfg, true).expect("session 1");
        svc.ingest(&lines[..kill]).expect("session 1 ingest");
        // SIGKILL: no drain, no flush, no report.
    }
    let mut svc = GridService::open_live(&cfg, true).expect("recovery");
    assert_eq!(svc.wal_replayed() as usize, kill);
    svc.ingest(&lines[kill..]).expect("session 2 ingest");
    svc.drain().expect("session 2 drain");
    let recovered = svc.into_report();

    assert_eq!(recovered.result.to_json(), reference.result.to_json());
    assert_eq!(
        sim_deterministic_metrics(&recovered.metrics_text),
        sim_deterministic_metrics(&reference.metrics_text),
        "fault schedule or dedup outcome diverged after recovery"
    );
    assert!(recovered.clean);
}
