//! Integration: the telemetry subsystem wired through a whole grid run.
//!
//! A small experiment-3 run (GA + agents) with a ring recorder must
//! surface events from every instrumented layer, round-trip through both
//! exporters, and aggregate into a readable report.

use agentgrid::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

fn traced_run() -> (ExperimentResult, Vec<TimedEvent>) {
    let topology = GridTopology::flat(3, 4);
    let workload = WorkloadConfig {
        requests: 20,
        interarrival: SimDuration::from_secs(1),
        seed: 41,
        agents: topology.names(),
        environment: ExecEnv::Test,
    };
    let ring = Arc::new(RingRecorder::unbounded());
    let mut opts = RunOptions::fast();
    opts.telemetry = Telemetry::new(ring.clone());
    let result = run_experiment(
        &ExperimentDesign::experiment3(),
        &topology,
        &workload,
        &opts,
    );
    (result, ring.snapshot())
}

#[test]
fn every_instrumented_layer_reports() {
    let (result, events) = traced_run();
    assert_eq!(result.total.tasks, 20);
    let kinds: BTreeSet<&str> = events.iter().map(|e| e.event.kind()).collect();
    for expected in [
        "task_submit",    // scheduler intake
        "task_start",     // scheduler placement
        "task_finish",    // scheduler completion
        "ga_generation",  // GA inner loop
        "ga_evolve",      // GA per-replan summary
        "cache_evaluate", // PACE cache misses
        "advertise",      // agent advertisement
        "discovery",      // agent decision
        "engine_horizon", // engine bookkeeping
    ] {
        assert!(
            kinds.contains(expected),
            "missing {expected}; saw {kinds:?}"
        );
    }
}

#[test]
fn timestamps_are_monotone_per_run() {
    let (_, events) = traced_run();
    assert!(!events.is_empty());
    for pair in events.windows(2) {
        assert!(pair[0].t <= pair[1].t, "time went backwards: {pair:?}");
    }
}

#[test]
fn trace_round_trips_through_jsonl() {
    let (_, events) = traced_run();
    let text = write_jsonl(&events);
    let back = read_trace(&text).expect("jsonl parses");
    assert_eq!(events, back);
}

#[test]
fn chrome_trace_is_perfetto_shaped() {
    let (_, events) = traced_run();
    let text = write_chrome(&events);
    let v = agentgrid_telemetry::json::Value::parse(&text).expect("valid JSON");
    let entries = v.as_arr().expect("trace_event array");
    assert!(!entries.is_empty());
    for e in entries {
        // Every entry carries the minimal trace_event surface; data
        // entries ("i") additionally carry a timestamp.
        assert!(e.get("pid").is_some());
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph present");
        if ph == "i" {
            assert!(e.get("ts").is_some());
        }
    }
    // Thread-name metadata entries label the tracks.
    assert!(entries
        .iter()
        .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name")));
}

#[test]
fn aggregate_summarises_the_run() {
    let (result, events) = traced_run();
    let agg = Aggregate::from_events(&events);
    let report = agg.render();
    assert!(report.contains("event counts"));
    assert!(report.contains("task_start"));
    assert!(report.contains("p50"));
    // Every submitted task starts exactly once.
    let starts = events
        .iter()
        .filter(|e| e.event.kind() == "task_start")
        .count();
    assert_eq!(starts, result.total.tasks);
}

#[test]
fn discovery_decisions_cover_the_request_stream() {
    let (result, events) = traced_run();
    // Each request triggers at least one agent decision, and every
    // decision names a known verdict.
    let mut decided: BTreeSet<u64> = BTreeSet::new();
    for e in &events {
        if let Event::Discovery { task, decision, .. } = &e.event {
            assert!(
                ["local", "dispatch", "escalate", "reject"].contains(&decision.as_str()),
                "unknown decision {decision}"
            );
            decided.insert(*task);
        }
    }
    assert_eq!(decided.len(), result.total.tasks);
}
