//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, `Bencher::iter` /
//! `iter_batched` — measuring wall-clock time with `std::time::Instant`
//! and printing a median/mean summary per benchmark. No statistical
//! regression analysis, plotting, or result persistence; good enough to
//! compare timings by eye and to keep `cargo bench` compiling and
//! running without network access.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. Only the sizes the harness
/// distinguishes upstream; this shim treats them identically (one setup
/// per measured iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier combining a function name and a parameter, e.g.
/// `pop50_gens10/20`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
            iters_per_sample: 1,
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so each sample runs long enough to time reliably.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<44} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{label:<44} median {:>12} mean {:>12} ({} samples x {} iters)",
            fmt_duration(median),
            fmt_duration(mean),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in the group with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher::new(samples);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// End the group (explicit for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one name, optionally with a
/// configured `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running each group (ignores harness CLI flags such as
/// the `--bench` that `cargo bench` appends).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0u64;
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn group_overrides_sample_size() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, n| {
            b.iter_batched(|| *n, |x| x + 1, BatchSize::SmallInput);
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("pop", 20).to_string(), "pop/20");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
