//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/macro surface the workspace's property tests
//! use — range, tuple, `vec`, `Just`, `prop_oneof!`, `prop_map`,
//! `prop_filter_map`, regex-subset string strategies and the
//! `proptest!`/`prop_assert!` macros — over the vendored `rand` crate.
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs and seed instead), and sampling distributions are simple
//! uniforms. Both are acceptable here: the suite asserts invariants, not
//! distribution shapes, and failures are rare enough to debug from the
//! printed case.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG driving all sampling.
pub type TestRng = SmallRng;

/// Build the RNG for a named test (deterministic per test path).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Stable seed for a test path; `PROPTEST_SEED` overrides for replay.
pub fn seed_for(path: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every drawn value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Transform with rejection: `None` draws are retried (bounded).
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Keep only values satisfying `f` (retried, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Erase the concrete strategy type (for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

const FILTER_ATTEMPTS: usize = 1000;

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_ATTEMPTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

/// Strategy form of [`Arbitrary`]; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Either boolean, uniformly.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// Either boolean, uniformly.
    pub const ANY: AnyBool = AnyBool;
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, inclusive.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

mod pattern;

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

/// Per-test tuning accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declare property tests: each function runs its body over `cases`
/// sampled inputs. A failing case reports the case number and the seed
/// to replay with `PROPTEST_SEED`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::new_rng(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest {}: case {case}/{} failed (replay with PROPTEST_SEED={seed})",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
}

/// Assert inside a property (alias of `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property (alias of `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::new_rng(1);
        for _ in 0..200 {
            let v = (0u64..10, 1usize..=3, 0.0f64..1.0).sample(&mut rng);
            assert!(v.0 < 10 && (1..=3).contains(&v.1) && (0.0..1.0).contains(&v.2));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::new_rng(2);
        let s = crate::collection::vec(0u32..5, 1..4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::new_rng(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_patterns_match_their_class() {
        let mut rng = crate::new_rng(4);
        for _ in 0..100 {
            let s = "[a-z]{1,12}".sample(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-zA-Z][a-zA-Z0-9_.-]{0,15}".sample(&mut rng);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());
            assert!(t.len() <= 16);
        }
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = crate::new_rng(5);
        let s = (0u32..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8 })]
        /// The macro itself: samples bind and assertions fire.
        #[test]
        fn macro_binds_arguments(x in 0u64..50, ys in crate::collection::vec(0u8..4, 1..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.iter().filter(|y| **y >= 4).count(), 0);
        }
    }
}
