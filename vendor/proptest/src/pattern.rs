//! Regex-subset string sampling for `&str` strategies.
//!
//! Supports the subset the workspace's tests use: literal characters,
//! character classes `[...]` with ranges (`a-z`) and literals (a `-`
//! that is first, last, or follows a range is literal), and the
//! quantifiers `{n}` and `{m,n}` applied to the preceding atom.

use crate::TestRng;
use rand::Rng;

enum Atom {
    Literal(char),
    /// Inclusive character ranges; a literal char is a one-char range.
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|c| *c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let body = &chars[i + 1..close];
                let mut ranges = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        assert!(
                            body[j] <= body[j + 2],
                            "inverted range in pattern {pattern:?}"
                        );
                        ranges.push((body[j], body[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((body[j], body[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(ranges)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..]
                .iter()
                .position(|c| *c == '}')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("quantifier min"),
                    hi.parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick).expect("class char");
                }
                pick -= span;
            }
            unreachable!("pick exceeded class total")
        }
    }
}

pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_and_class_mix() {
        let mut rng = crate::new_rng(11);
        for _ in 0..50 {
            let s = super::sample("ab[0-9]{2,4}!", &mut rng);
            assert!(s.starts_with("ab") && s.ends_with('!'));
            let digits = &s[2..s.len() - 1];
            assert!((2..=4).contains(&digits.len()));
            assert!(digits.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = crate::new_rng(12);
        for _ in 0..200 {
            let s = super::sample("[a-b.-]", &mut rng);
            let c = s.chars().next().unwrap();
            assert!(matches!(c, 'a' | 'b' | '.' | '-'), "got {c:?}");
        }
    }

    #[test]
    fn printable_ascii_range() {
        let mut rng = crate::new_rng(13);
        for _ in 0..100 {
            let s = super::sample("[ -~]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
