//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact trait surface it uses* — [`RngCore`],
//! [`SeedableRng`], the extension trait [`Rng`] and a small fast
//! generator [`rngs::SmallRng`] — with no external dependencies. The
//! algorithms are standard (xoshiro256++ behind `SmallRng`, SplitMix64
//! for `seed_from_u64`); the *stream values* differ from upstream
//! `rand`, which is fine because the workspace pins determinism to its
//! own seeds, never to upstream byte sequences.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type carried by [`RngCore::try_fill_bytes`]. The vendored
/// generators are infallible, so this is only ever constructed by
/// downstream code that wants the trait to be object-safe-complete.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Build from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 — every seed byte
    /// depends on every input bit.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expansion and a last-resort generator.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next 64-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniform ranges can be drawn over.
pub trait UniformInt: Copy + PartialOrd {
    /// `self` widened to `u64` relative to `base` (`self - base`).
    fn span_from(self, base: Self) -> u64;
    /// `base + offset`, the inverse of [`UniformInt::span_from`].
    fn offset_from(base: Self, offset: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn span_from(self, base: Self) -> u64 {
                (self as i128 - base as i128) as u64
            }
            fn offset_from(base: Self, offset: u64) -> Self {
                (base as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded draw (Lemire); unbiased enough for simulation
/// use and, above all, deterministic and platform-stable.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.span_from(self.start);
        T::offset_from(self.start, bounded(rng, span))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = end.span_from(start);
        if span == u64::MAX {
            return T::offset_from(start, rng.next_u64());
        }
        T::offset_from(start, bounded(rng, span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::draw(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::draw(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; perturb it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            SmallRng { s }
        }
    }
}

/// `rand::prelude`-style glob imports.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = r.gen_range(0..10);
            assert!(v < 10);
            let w: u64 = r.gen_range(5..=9);
            assert!((5..=9).contains(&w));
            let f: f64 = r.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
            let g: f64 = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn bounded_draw_covers_small_spans() {
        let mut r = SmallRng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
