//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator (D. J. Bernstein's ChaCha with 8 double-rounds' worth of
//! quarter-round scheduling, i.e. 4 column + 4 diagonal rounds twice)
//! implementing the vendored [`rand`] traits. Output values differ from
//! upstream `rand_chacha` (which interleaves words differently); the
//! workspace only relies on determinism and statistical quality, both of
//! which the raw keystream provides.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based deterministic generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constant + counter/nonce state, in RFC 7539 word order.
    state: [u32; 16],
    /// Current 64-byte keystream block as 16 little-endian words.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means "exhausted".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, st)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*st);
        }
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_for_a_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_separate_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn raw_chacha_block_matches_reference_structure() {
        // The first block of the all-zero key must not be all zeros and
        // must differ from the second block (counter advances).
        let mut r = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
        assert!(first.iter().any(|w| *w != 0));
    }

    #[test]
    fn words_have_no_trivial_bias() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| r.next_u32().count_ones()).sum();
        // 32_000 bits, expect ~16_000 ones; allow a generous band.
        assert!((14_000..18_000).contains(&ones), "ones = {ones}");
    }
}
